// Canonical payload codecs for the artifact classes the engine
// persists. Every codec is deterministic and exact: rationals render
// as big.Rat.RatString() (always lowest terms, so equal rationals
// encode identically), integers in decimal, rows newline-separated,
// entries space-separated. Decoders re-validate the mathematical
// invariants the in-memory constructors enforce (stochastic rows,
// ladder ordering, table geometry), so a decoded artifact is exactly
// as trustworthy as a freshly computed one — the envelope checksum
// rules out bit rot, the constructors rule out structurally invalid
// data that was checksummed correctly.

package store

import (
	"bytes"
	"fmt"
	"math/big"
	"strconv"
	"strings"

	"minimaxdp/internal/baseline"
	"minimaxdp/internal/consumer"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
	"minimaxdp/internal/sample"
)

// appendRatRows appends one line per row, entries as RatStrings.
func appendRatRows(b *bytes.Buffer, rows [][]*big.Rat) {
	for _, row := range rows {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(v.RatString())
		}
		b.WriteByte('\n')
	}
}

// matrixRows renders m as a slice of row slices (borrowed, read-only).
func matrixRows(m *matrix.Matrix) [][]*big.Rat {
	rows := make([][]*big.Rat, m.Rows())
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}

// lineReader walks a payload line by line. Payloads are in-memory
// (they already passed the envelope), so splitting eagerly is fine
// and avoids bufio.Scanner's token-size limit — a single row of a
// large-n mechanism can exceed 64KiB.
type lineReader struct {
	lines []string
	next  int
}

func newLineReader(payload []byte) *lineReader {
	s := strings.TrimSuffix(string(payload), "\n")
	return &lineReader{lines: strings.Split(s, "\n")}
}

func (r *lineReader) line() (string, error) {
	if r.next >= len(r.lines) {
		return "", fmt.Errorf("store: payload truncated at line %d", r.next+1)
	}
	l := r.lines[r.next]
	r.next++
	return l, nil
}

func (r *lineReader) done() error {
	if r.next != len(r.lines) {
		return fmt.Errorf("store: %d trailing payload lines", len(r.lines)-r.next)
	}
	return nil
}

// header reads a line and checks its first field, returning the rest.
func (r *lineReader) header(want string, argc int) ([]string, error) {
	l, err := r.line()
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(l)
	if len(fields) != argc+1 || fields[0] != want {
		return nil, fmt.Errorf("store: expected %q header with %d args, got %q", want, argc, l)
	}
	return fields[1:], nil
}

// ratStrings reads count lines of width space-separated entries each.
func (r *lineReader) ratStrings(count, width int) ([][]string, error) {
	out := make([][]string, count)
	for i := 0; i < count; i++ {
		l, err := r.line()
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(l)
		if len(fields) != width {
			return nil, fmt.Errorf("store: row %d has %d entries, want %d", i, len(fields), width)
		}
		out[i] = fields
	}
	return out, nil
}

func parseCount(s, what string, min, max int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil || v < min || (max >= 0 && v > max) {
		return 0, fmt.Errorf("store: bad %s %q", what, s)
	}
	return v, nil
}

// maxDecodeDim bounds decoded matrix/mechanism dimensions, so a
// well-checksummed but absurd header cannot drive an allocation bomb.
const maxDecodeDim = 1 << 16

// --- matrix (T_{α,β} transitions) ----------------------------------------

// EncodeMatrix renders a matrix payload (class "transitions" uses
// this, but the codec is shape-generic).
func EncodeMatrix(m *matrix.Matrix) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "matrix %d %d\n", m.Rows(), m.Cols())
	appendRatRows(&b, matrixRows(m))
	return b.Bytes()
}

// DecodeMatrix parses EncodeMatrix output. The transition matrices
// the engine persists are additionally row-stochastic; that invariant
// is checked by the plan/transition consumers (release.PlanFromParts,
// mechanism.PostProcess), not here, since raw matrices are not
// necessarily stochastic.
func DecodeMatrix(payload []byte) (*matrix.Matrix, error) {
	r := newLineReader(payload)
	args, err := r.header("matrix", 2)
	if err != nil {
		return nil, err
	}
	rows, err := parseCount(args[0], "row count", 1, maxDecodeDim)
	if err != nil {
		return nil, err
	}
	cols, err := parseCount(args[1], "column count", 1, maxDecodeDim)
	if err != nil {
		return nil, err
	}
	strs, err := r.ratStrings(rows, cols)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return matrix.FromStrings(strs)
}

// --- mechanism ------------------------------------------------------------

// EncodeMechanism renders a mechanism payload: the domain bound n and
// the (n+1)×(n+1) stochastic matrix.
func EncodeMechanism(mc *mechanism.Mechanism) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "mechanism %d\n", mc.N())
	rows := make([][]*big.Rat, mc.Size())
	for i := range rows {
		rows[i] = mc.Row(i)
	}
	appendRatRows(&b, rows)
	return b.Bytes()
}

// DecodeMechanism parses EncodeMechanism output; row-stochasticity is
// re-checked by mechanism.FromStrings.
func DecodeMechanism(payload []byte) (*mechanism.Mechanism, error) {
	r := newLineReader(payload)
	args, err := r.header("mechanism", 1)
	if err != nil {
		return nil, err
	}
	n, err := parseCount(args[0], "domain bound", 0, maxDecodeDim)
	if err != nil {
		return nil, err
	}
	strs, err := r.ratStrings(n+1, n+1)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return mechanism.FromStrings(strs)
}

// --- tailored LP solutions ------------------------------------------------

// EncodeTailored renders a §2.5 tailored optimum: the minimax loss
// value plus the optimal mechanism.
func EncodeTailored(t *consumer.Tailored) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "tailored %d\nloss %s\n", t.Mechanism.N(), t.Loss.RatString())
	rows := make([][]*big.Rat, t.Mechanism.Size())
	for i := range rows {
		rows[i] = t.Mechanism.Row(i)
	}
	appendRatRows(&b, rows)
	return b.Bytes()
}

// DecodeTailored parses EncodeTailored output.
func DecodeTailored(payload []byte) (*consumer.Tailored, error) {
	r := newLineReader(payload)
	args, err := r.header("tailored", 1)
	if err != nil {
		return nil, err
	}
	n, err := parseCount(args[0], "domain bound", 0, maxDecodeDim)
	if err != nil {
		return nil, err
	}
	lossArgs, err := r.header("loss", 1)
	if err != nil {
		return nil, err
	}
	lossVal, err := rational.Parse(lossArgs[0])
	if err != nil {
		return nil, fmt.Errorf("store: bad loss value: %w", err)
	}
	if lossVal.Sign() < 0 {
		return nil, fmt.Errorf("store: negative minimax loss %s", lossVal.RatString())
	}
	strs, err := r.ratStrings(n+1, n+1)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	mc, err := mechanism.FromStrings(strs)
	if err != nil {
		return nil, err
	}
	return &consumer.Tailored{Mechanism: mc, Loss: lossVal}, nil
}

// --- compare scorecards ---------------------------------------------------

// EncodeCompare renders an optimality-gap scorecard: the header fixes
// the domain bound, consumer model name, privacy level, and entry
// count; then the tailored-optimal loss and one line per baseline.
// Baseline spec strings and model names are space-free by
// construction, so the line format stays field-splittable.
func EncodeCompare(c *baseline.Comparison) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "compare %d %s %s %d\n", c.N, c.Model, c.Alpha.RatString(), len(c.Entries))
	fmt.Fprintf(&b, "tailored %s\n", c.TailoredLoss.RatString())
	for _, e := range c.Entries {
		fmt.Fprintf(&b, "entry %s %s %s %s %s\n",
			e.Spec, e.Loss.RatString(), e.InteractionLoss.RatString(),
			e.Gap.RatString(), e.BestAlpha.RatString())
	}
	return b.Bytes()
}

// DecodeCompare parses EncodeCompare output. Beyond the per-field
// rational parses it re-validates the scorecard's arithmetic identity
// (Gap = InteractionLoss − TailoredLoss per entry, via
// baseline.Comparison.Validate), so a checksum-valid but internally
// inconsistent entry is rejected rather than served.
func DecodeCompare(payload []byte) (*baseline.Comparison, error) {
	r := newLineReader(payload)
	args, err := r.header("compare", 4)
	if err != nil {
		return nil, err
	}
	n, err := parseCount(args[0], "domain bound", 0, maxDecodeDim)
	if err != nil {
		return nil, err
	}
	model := args[1]
	if model == "" {
		return nil, fmt.Errorf("store: empty compare model")
	}
	alpha, err := rational.Parse(args[2])
	if err != nil {
		return nil, fmt.Errorf("store: bad compare alpha: %w", err)
	}
	count, err := parseCount(args[3], "entry count", 1, maxDecodeDim)
	if err != nil {
		return nil, err
	}
	tailoredArgs, err := r.header("tailored", 1)
	if err != nil {
		return nil, err
	}
	tailoredLoss, err := rational.Parse(tailoredArgs[0])
	if err != nil {
		return nil, fmt.Errorf("store: bad tailored loss: %w", err)
	}
	out := &baseline.Comparison{
		N:            n,
		Alpha:        alpha,
		Model:        model,
		TailoredLoss: tailoredLoss,
		Entries:      make([]baseline.Entry, 0, count),
	}
	for i := 0; i < count; i++ {
		fields, err := r.header("entry", 5)
		if err != nil {
			return nil, err
		}
		spec, err := baseline.ParseSpec(fields[0])
		if err != nil {
			return nil, fmt.Errorf("store: compare entry %d: %w", i, err)
		}
		vals := make([]*big.Rat, 4)
		for j, f := range fields[1:] {
			vals[j], err = rational.Parse(f)
			if err != nil {
				return nil, fmt.Errorf("store: compare entry %d field %d: %w", i, j+1, err)
			}
		}
		out.Entries = append(out.Entries, baseline.Entry{
			Spec:            spec.String(),
			Loss:            vals[0],
			InteractionLoss: vals[1],
			Gap:             vals[2],
			BestAlpha:       vals[3],
		})
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// --- release plans --------------------------------------------------------

// EncodePlan renders an Algorithm 1 release plan: n, the α-ladder,
// and the Lemma 3 transition chain. The marginal mechanisms G_{n,αᵢ}
// are deliberately NOT stored — they have a cheap closed form and
// release.PlanFromParts rebuilds them exactly, so the payload holds
// only the artifacts that are expensive to derive.
func EncodePlan(p *release.Plan) ([]byte, error) {
	var b bytes.Buffer
	k := p.Levels()
	fmt.Fprintf(&b, "plan %d %d\nalphas", p.N(), k)
	for lvl := 1; lvl <= k; lvl++ {
		a, err := p.Alpha(lvl)
		if err != nil {
			return nil, err
		}
		b.WriteByte(' ')
		b.WriteString(a.RatString())
	}
	b.WriteByte('\n')
	for lvl := 1; lvl < k; lvl++ {
		tr, err := p.Transition(lvl)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "transition %d\n", lvl)
		appendRatRows(&b, matrixRows(tr))
	}
	return b.Bytes(), nil
}

// DecodePlan parses EncodePlan output and reassembles the plan via
// release.PlanFromParts (which re-validates the ladder and the
// stochasticity of every transition).
func DecodePlan(payload []byte) (*release.Plan, error) {
	r := newLineReader(payload)
	args, err := r.header("plan", 2)
	if err != nil {
		return nil, err
	}
	n, err := parseCount(args[0], "domain bound", 1, maxDecodeDim)
	if err != nil {
		return nil, err
	}
	k, err := parseCount(args[1], "level count", 1, maxDecodeDim)
	if err != nil {
		return nil, err
	}
	l, err := r.line()
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(l)
	if len(fields) != k+1 || fields[0] != "alphas" {
		return nil, fmt.Errorf("store: expected %d alphas, got %q", k, l)
	}
	alphas := make([]*big.Rat, k)
	for i, s := range fields[1:] {
		alphas[i], err = rational.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("store: bad alpha %d: %w", i+1, err)
		}
	}
	transitions := make([]*matrix.Matrix, 0, k-1)
	for lvl := 1; lvl < k; lvl++ {
		trArgs, err := r.header("transition", 1)
		if err != nil {
			return nil, err
		}
		if trArgs[0] != strconv.Itoa(lvl) {
			return nil, fmt.Errorf("store: transition %s out of order (want %d)", trArgs[0], lvl)
		}
		strs, err := r.ratStrings(n+1, n+1)
		if err != nil {
			return nil, err
		}
		tr, err := matrix.FromStrings(strs)
		if err != nil {
			return nil, err
		}
		transitions = append(transitions, tr)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return release.PlanFromParts(n, alphas, transitions)
}

// --- dyadic alias sampler tables ------------------------------------------

// EncodeAliasTables renders the precompiled sampler tables for a
// mechanism on {0..n}: one certified integer alias kernel per input
// row. Pure integer data — the exactness of the tables was certified
// against the rational rows at construction and survives untouched.
func EncodeAliasTables(n int, rows []sample.AliasTables) ([]byte, error) {
	if len(rows) != n+1 {
		return nil, fmt.Errorf("store: %d alias rows for n=%d (want %d)", len(rows), n, n+1)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "sampler %d\n", n)
	for i := range rows {
		t := &rows[i]
		fmt.Fprintf(&b, "row %d\n", t.K)
		appendUint64Line(&b, "thresh", t.Thresh)
		appendInt32Line(&b, "outcome", t.Outcome)
		appendInt32Line(&b, "alias", t.Alias)
	}
	return b.Bytes(), nil
}

func appendUint64Line(b *bytes.Buffer, name string, vs []uint64) {
	b.WriteString(name)
	for _, v := range vs {
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(v, 10))
	}
	b.WriteByte('\n')
}

func appendInt32Line(b *bytes.Buffer, name string, vs []int32) {
	b.WriteString(name)
	for _, v := range vs {
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(int64(v), 10))
	}
	b.WriteByte('\n')
}

// DecodeAliasTables parses EncodeAliasTables output. Structural
// validation of each table (geometry, threshold scale, index ranges)
// happens in sample.DyadicAliasFromTables when the caller compiles
// the kernel.
func DecodeAliasTables(payload []byte) (n int, rows []sample.AliasTables, err error) {
	r := newLineReader(payload)
	args, err := r.header("sampler", 1)
	if err != nil {
		return 0, nil, err
	}
	n, err = parseCount(args[0], "domain bound", 0, maxDecodeDim)
	if err != nil {
		return 0, nil, err
	}
	rows = make([]sample.AliasTables, n+1)
	for i := 0; i <= n; i++ {
		rowArgs, err := r.header("row", 1)
		if err != nil {
			return 0, nil, err
		}
		// Bound matches sample.MaxDyadicOutcomes = 2^24: larger
		// exponents are impossible for certified tables and 1<<k must
		// not overflow.
		k, err := parseCount(rowArgs[0], "table exponent", 0, 24)
		if err != nil {
			return 0, nil, err
		}
		slots := 1 << uint(k)
		thresh, err := r.uint64Line("thresh", slots)
		if err != nil {
			return 0, nil, err
		}
		outcome, err := r.int32Line("outcome", slots)
		if err != nil {
			return 0, nil, err
		}
		alias, err := r.int32Line("alias", slots)
		if err != nil {
			return 0, nil, err
		}
		rows[i] = sample.AliasTables{K: uint(k), Thresh: thresh, Outcome: outcome, Alias: alias}
	}
	if err := r.done(); err != nil {
		return 0, nil, err
	}
	return n, rows, nil
}

func (r *lineReader) uint64Line(name string, count int) ([]uint64, error) {
	fields, err := r.namedFields(name, count)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, count)
	for i, f := range fields {
		out[i], err = strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("store: bad %s entry %q", name, f)
		}
	}
	return out, nil
}

func (r *lineReader) int32Line(name string, count int) ([]int32, error) {
	fields, err := r.namedFields(name, count)
	if err != nil {
		return nil, err
	}
	out := make([]int32, count)
	for i, f := range fields {
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("store: bad %s entry %q", name, f)
		}
		out[i] = int32(v)
	}
	return out, nil
}

func (r *lineReader) namedFields(name string, count int) ([]string, error) {
	l, err := r.line()
	if err != nil {
		return nil, err
	}
	fields := strings.Fields(l)
	if len(fields) != count+1 || fields[0] != name {
		return nil, fmt.Errorf("store: expected %q line with %d entries, got %d fields", name, count, len(fields))
	}
	return fields[1:], nil
}
