package stats

import (
	"errors"
	"math"
	"testing"

	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	v, err := Variance(xs)
	if err != nil || math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, %v", v, err)
	}
	sd, err := StdDev(xs)
	if err != nil || math.Abs(sd-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v, %v", sd, err)
	}
}

func TestStatErrors(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Mean(nil) should ErrEmpty")
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Error("Variance of 1 sample should error")
	}
	if _, err := StdDev(nil); err == nil {
		t.Error("StdDev(nil) should error")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("Quantile(nil) should ErrEmpty")
	}
	if _, err := Quantile([]float64{1}, 2); err == nil {
		t.Error("q>1 accepted")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if q, _ := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q, _ := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %v", q)
	}
	if q, _ := Quantile(xs, 0.5); q != 2.5 {
		t.Errorf("median = %v", q)
	}
	if q, _ := Quantile([]float64{7}, 0.3); q != 7 {
		t.Errorf("singleton quantile = %v", q)
	}
	// Quantile must not mutate its input.
	if xs[0] != 3 {
		t.Error("Quantile sorted the caller's slice")
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	m, hw, err := MeanCI(xs, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 {
		t.Errorf("mean = %v", m)
	}
	want := 1.96 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(hw-want) > 1e-12 {
		t.Errorf("halfWidth = %v, want %v", hw, want)
	}
	_, hw, err = MeanCI([]float64{42}, 1.96)
	if err != nil || !math.IsInf(hw, 1) {
		t.Error("single sample should give infinite half-width")
	}
	if _, _, err := MeanCI(nil, 1.96); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestTotalVariation(t *testing.T) {
	p := []float64{0.5, 0.5, 0}
	q := []float64{0.25, 0.25, 0.5}
	tv, err := TotalVariation(p, q)
	if err != nil || tv != 0.5 {
		t.Errorf("TV = %v, %v", tv, err)
	}
	if _, err := TotalVariation(p, q[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := TotalVariation(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty accepted")
	}
	same, _ := TotalVariation(p, p)
	if same != 0 {
		t.Error("TV(p,p) != 0")
	}
}

func TestChiSquare(t *testing.T) {
	// 100 draws, expected uniform over 2 cells, observed 60/40:
	// (60-50)²/50 + (40-50)²/50 = 4.
	stat, err := ChiSquare([]int{60, 40}, []float64{0.5, 0.5})
	if err != nil || stat != 4 {
		t.Errorf("chi2 = %v, %v", stat, err)
	}
	// Zero expected cell with observations → +Inf.
	stat, err = ChiSquare([]int{1, 99}, []float64{0, 1})
	if err != nil || !math.IsInf(stat, 1) {
		t.Errorf("chi2 with impossible cell = %v, %v", stat, err)
	}
	// Zero expected cell without observations is fine.
	stat, err = ChiSquare([]int{0, 100}, []float64{0, 1})
	if err != nil || stat != 0 {
		t.Errorf("chi2 = %v, %v", stat, err)
	}
	if _, err := ChiSquare([]int{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ChiSquare(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty accepted")
	}
	if _, err := ChiSquare([]int{0, 0}, []float64{0.5, 0.5}); !errors.Is(err, ErrEmpty) {
		t.Error("zero total accepted")
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	p := []float64{1, 0, 0}
	q := []float64{0, 0, 1}
	ks, err := KolmogorovSmirnov(p, q)
	if err != nil || ks != 1 {
		t.Errorf("KS = %v, %v", ks, err)
	}
	if _, err := KolmogorovSmirnov(p, q[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := KolmogorovSmirnov(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty accepted")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{0, 1, 1, 5, -2}, 3)
	if h[0] != 2 || h[1] != 2 || h[2] != 1 {
		t.Errorf("Histogram = %v", h)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	c, err := Correlation(xs, ys)
	if err != nil || math.Abs(c-1) > 1e-12 {
		t.Errorf("corr = %v, %v", c, err)
	}
	neg := []float64{8, 6, 4, 2}
	c, _ = Correlation(xs, neg)
	if math.Abs(c+1) > 1e-12 {
		t.Errorf("anti-corr = %v", c)
	}
	if _, err := Correlation(xs, ys[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Correlation([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance accepted")
	}
}

// The empirical DP audit of the geometric mechanism converges near its
// exact α.
func TestAuditDPGeometric(t *testing.T) {
	g, err := mechanism.Geometric(3, rational.MustParse("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := AuditDP(g, 200000, sample.NewRand(21))
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstAlpha < 0.45 || res.WorstAlpha > 0.55 {
		t.Errorf("audited α = %v, want ≈ 0.5", res.WorstAlpha)
	}
	if res.Trials != 200000 {
		t.Error("trials not recorded")
	}
	if _, err := AuditDP(g, 0, sample.NewRand(1)); err == nil {
		t.Error("zero trials accepted")
	}
}
