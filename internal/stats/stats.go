// Package stats supplies the statistical toolkit used by the
// Monte-Carlo experiments: descriptive statistics, distances between
// distributions (total variation, chi-square, Kolmogorov–Smirnov),
// confidence intervals, and an empirical differential-privacy audit.
// Go's ecosystem has no stdlib statistics package, so the experiment
// harness's needs are implemented here from scratch.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
)

// ErrEmpty is returned by statistics that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return mean(xs), nil
}

// mean is the no-error core of Mean for callers that have already
// established xs is non-empty.
func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n−1 denominator).
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: variance needs ≥ 2 samples, got %d", len(xs))
	}
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1), nil
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// on the sorted sample.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// MeanCI returns the mean together with a normal-approximation
// confidence half-width z·s/√n (z = 1.96 for 95%).
func MeanCI(xs []float64, z float64) (mean, halfWidth float64, err error) {
	mean, err = Mean(xs)
	if err != nil {
		return 0, 0, err
	}
	if len(xs) < 2 {
		return mean, math.Inf(1), nil
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, 0, err
	}
	return mean, z * sd / math.Sqrt(float64(len(xs))), nil
}

// TotalVariation returns ½·Σ|p−q| for two probability vectors of equal
// length.
func TotalVariation(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(p), len(q))
	}
	if len(p) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2, nil
}

// ChiSquare returns the Pearson chi-square statistic
// Σ (observed − expectedCount)² / expectedCount, where expectedCount =
// expectedProb·total. Cells with zero expected probability must have
// zero observations; otherwise the statistic is +Inf.
func ChiSquare(observed []int, expectedProb []float64) (float64, error) {
	if len(observed) != len(expectedProb) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(observed), len(expectedProb))
	}
	if len(observed) == 0 {
		return 0, ErrEmpty
	}
	total := 0
	for _, o := range observed {
		total += o
	}
	if total == 0 {
		return 0, ErrEmpty
	}
	stat := 0.0
	for i, o := range observed {
		e := expectedProb[i] * float64(total)
		if e == 0 {
			if o != 0 {
				return math.Inf(1), nil
			}
			continue
		}
		d := float64(o) - e
		stat += d * d / e
	}
	return stat, nil
}

// KolmogorovSmirnov returns max_k |CDF_p(k) − CDF_q(k)| for two
// probability vectors on the same support.
func KolmogorovSmirnov(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(p), len(q))
	}
	if len(p) == 0 {
		return 0, ErrEmpty
	}
	cp, cq, worst := 0.0, 0.0, 0.0
	for i := range p {
		cp += p[i]
		cq += q[i]
		if d := math.Abs(cp - cq); d > worst {
			worst = d
		}
	}
	return worst, nil
}

// Histogram tallies integer observations into buckets [0, buckets).
// Out-of-range values are clamped.
func Histogram(xs []int, buckets int) []int {
	h := make([]int, buckets)
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		if x >= buckets {
			x = buckets - 1
		}
		h[x]++
	}
	return h
}

// DPAuditResult reports the worst empirical privacy ratio observed
// between adjacent inputs of a mechanism.
type DPAuditResult struct {
	WorstAlpha float64 // empirical min over (i,r) of freq ratio, clipped to [0,1]
	I, R       int     // where the worst ratio occurred
	Trials     int
}

// AuditDP estimates the mechanism's privacy level from samples: it
// draws trials outputs for every input, then for every adjacent input
// pair and output computes the frequency ratio, returning the worst.
// With enough trials the result converges to BestAlpha; the audit
// exists to validate samplers against the exact matrix, and as an
// example of black-box DP testing.
func AuditDP(m *mechanism.Mechanism, trials int, rng *rand.Rand) (*DPAuditResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("stats: trials must be positive, got %d", trials)
	}
	n := m.N()
	freq := make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		counts := make([]int, n+1)
		for t := 0; t < trials; t++ {
			counts[m.Sample(i, rng)]++
		}
		freq[i] = make([]float64, n+1)
		for r := 0; r <= n; r++ {
			freq[i][r] = float64(counts[r]) / float64(trials)
		}
	}
	res := &DPAuditResult{WorstAlpha: 1, Trials: trials}
	// Frequency ratios are only meaningful where both cells have
	// enough expected mass; rare tail cells would contribute pure
	// sampling noise (a 1-vs-8 count looks like α = 1/8). The usual
	// rule of ≥ ~400 expected observations keeps the relative error of
	// each frequency near 5%, so the worst ratio is within ~10% of its
	// exact value.
	minExpected := 400.0 / float64(trials)
	for i := 0; i < n; i++ {
		for r := 0; r <= n; r++ {
			a, b := freq[i][r], freq[i+1][r]
			pa, pb := rational.Float(m.Prob(i, r)), rational.Float(m.Prob(i+1, r))
			if pa < minExpected || pb < minExpected {
				continue
			}
			if a == 0 || b == 0 {
				continue // unobserved in this run; too little signal
			}
			ratio := a / b
			if ratio > 1 {
				ratio = 1 / ratio
			}
			if ratio < res.WorstAlpha {
				res.WorstAlpha = ratio
				res.I, res.R = i, r
			}
		}
	}
	return res, nil
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length samples.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: correlation needs ≥ 2 samples")
	}
	mx, my := mean(xs), mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
