package minimaxdp

import (
	"math"
	"math/big"
	"testing"
)

// Edge cases of the accounting facade: domain errors on the α ↔ ε
// conversions, degenerate compositions, non-positive group sizes, and
// the trivial tail bound. The happy paths are covered by the examples
// and integration tests; these pin the refusal behavior.

func TestAlphaEpsilonDomainErrors(t *testing.T) {
	for _, eps := range []float64{-1, -1e-12, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := AlphaFromEpsilon(eps); err == nil {
			t.Errorf("AlphaFromEpsilon(%v) accepted an out-of-domain ε", eps)
		}
	}
	for _, alpha := range []float64{0, -0.5, 1.0000001, 2, math.NaN()} {
		if _, err := EpsilonFromAlpha(alpha); err == nil {
			t.Errorf("EpsilonFromAlpha(%v) accepted an out-of-domain α", alpha)
		}
	}
	// Boundary values are legal: ε = 0 ↔ α = 1 (no privacy spent).
	a, err := AlphaFromEpsilon(0)
	if err != nil || a != 1 {
		t.Errorf("AlphaFromEpsilon(0) = %v, %v; want 1", a, err)
	}
	e, err := EpsilonFromAlpha(1)
	if err != nil || e != 0 {
		t.Errorf("EpsilonFromAlpha(1) = %v, %v; want 0", e, err)
	}
}

func TestComposeDegenerate(t *testing.T) {
	if _, err := Compose(nil); err == nil {
		t.Error("Compose(nil) succeeded; the empty product has no guarantee to report")
	}
	if _, err := Compose([]*big.Rat{}); err == nil {
		t.Error("Compose(empty) succeeded")
	}
	if _, err := Compose([]*big.Rat{MustRat("1/2"), MustRat("3/2")}); err == nil {
		t.Error("Compose accepted α > 1")
	}
	if _, err := Compose([]*big.Rat{MustRat("-1/2")}); err == nil {
		t.Error("Compose accepted α < 0")
	}
	// A single level composes to itself, and the input is not aliased.
	a := MustRat("2/3")
	got, err := Compose([]*big.Rat{a})
	if err != nil || got.RatString() != "2/3" {
		t.Fatalf("Compose([2/3]) = %v, %v", got, err)
	}
	got.SetInt64(0)
	if a.RatString() != "2/3" {
		t.Error("Compose aliased its input slice")
	}
}

func TestGroupPrivacyDegenerate(t *testing.T) {
	for _, g := range []int{0, -1, -100} {
		if _, err := GroupPrivacy(MustRat("1/2"), g); err == nil {
			t.Errorf("GroupPrivacy(g=%d) accepted a non-positive group", g)
		}
	}
	if _, err := GroupPrivacy(MustRat("5/4"), 2); err == nil {
		t.Error("GroupPrivacy accepted α > 1")
	}
	// g = 1 is the plain per-individual guarantee.
	got, err := GroupPrivacy(MustRat("1/3"), 1)
	if err != nil || got.RatString() != "1/3" {
		t.Errorf("GroupPrivacy(1/3, 1) = %v, %v", got, err)
	}
	if got, _ := GroupPrivacy(MustRat("1/2"), 3); got.RatString() != "1/8" {
		t.Errorf("GroupPrivacy(1/2, 3) = %s, want 1/8", got.RatString())
	}
}

func TestGeometricTailBoundTrivial(t *testing.T) {
	alpha := MustRat("1/2")
	// Pr[|noise| ≥ 0] is certain; non-positive thresholds collapse to 1.
	for _, tt := range []int{0, -1, -7} {
		if got := GeometricTailBound(alpha, tt); got.RatString() != "1" {
			t.Errorf("GeometricTailBound(t=%d) = %s, want 1", tt, got.RatString())
		}
	}
	if got := GeometricTailBound(alpha, 1); got.RatString() != "2/3" {
		t.Errorf("GeometricTailBound(t=1) = %s, want 2α/(1+α) = 2/3", got.RatString())
	}
}
