// Command experiments regenerates every table and figure of the paper
// plus the empirical experiments listed in DESIGN.md §3.
//
// Usage:
//
//	experiments [-mode paper|gap] [-run all|F1,T1,...] [-seed 1] [-trials 20000] [-o out.txt]
//
// -mode=gap skips the registry and runs the optimality-gap sweep
// (gap.go): baseline mechanisms scored against tailored optima over a
// consumer grid, hard-failing unless every minimax geometric gap is
// exactly zero (the Theorem 1 certificate).
//
// Experiment IDs: F1 (Figure 1), T1 (Table 1), T2 (Table 2),
// EB (Appendix B), ETh2 (Theorem 2 equivalence), EL1 (Lemma 1),
// EL3 (Lemma 3), ETh1 (Theorem 1 universal optimality),
// ECol (collusion resistance), EBay (Bayesian comparison),
// EObl (Appendix A oblivious reduction), EMQ (multi-query composition),
// EL5 (Lemma 5 structure), EPU (privacy-utility frontier),
// ELap (Laplace baseline), ERR (randomized-response baseline).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// config carries the shared experiment parameters.
type config struct {
	seed   int64
	trials int
}

type experiment struct {
	id    string
	title string
	run   func(w io.Writer, cfg config) error
}

var registry = []experiment{
	{"F1", "Figure 1: geometric mechanism PMF (α=0.2, result 5)", runF1},
	{"T1", "Table 1: optimal mechanism, G_{3,1/4}, consumer interaction", runT1},
	{"T2", "Table 2: G_{n,α} and G'_{n,α}", runT2},
	{"EB", "Appendix B: DP mechanism not derivable from geometric", runEB},
	{"ETh2", "Theorem 2: derivability characterization equivalence", runETh2},
	{"EL1", "Lemma 1: det G_{n,α} > 0, closed form", runEL1},
	{"EL3", "Lemma 3: transition matrices T_{α,β} stochastic", runEL3},
	{"ETh1", "Theorem 1(2): universal optimality across consumers", runETh1},
	{"ECol", "Theorem 1(1)/Lemma 4: collusion resistance vs naive", runECol},
	{"EBay", "Section 2.7: Bayesian vs minimax consumers", runEBay},
	{"EObl", "Appendix A: oblivious reduction never hurts", runEObl},
	{"EMQ", "Extension: multi-query composition on top of the geometric mechanism", runEMQ},
	{"EL5", "Lemma 5: structure of lexicographically refined optima", runEL5},
	{"EPU", "Extension: privacy-utility frontier of the tailored optimum", runEPU},
	{"ELap", "Extension: geometric vs (rounded) Laplace at matched privacy", runELap},
	{"ERR", "Extension: geometric vs randomized response at matched privacy", runERR},
	{"EDet", "Section 2.7: the value of randomized post-processing (exhaustive)", runEDet},
}

func main() {
	mode := flag.String("mode", "paper", "paper = run the experiment registry; gap = optimality-gap sweep with the Theorem 1 zero-gap certificate")
	runFlag := flag.String("run", "all", "comma-separated experiment IDs, or 'all' (paper mode)")
	seed := flag.Int64("seed", 1, "PRNG seed for Monte-Carlo experiments and the gap-sweep consumer grid")
	trials := flag.Int("trials", 20000, "Monte-Carlo trials per arm (paper mode)")
	out := flag.String("o", "", "write output to file instead of stdout")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *mode != "paper" && *mode != "gap" {
		fmt.Fprintf(os.Stderr, "experiments: unknown mode %q (want paper or gap)\n", *mode)
		os.Exit(2)
	}

	if *list {
		for _, e := range registry {
			fmt.Printf("%-5s %s\n", e.id, e.title)
		}
		return
	}

	var w io.Writer = os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		outFile = f
		w = f
	}

	cfg := config{seed: *seed, trials: *trials}
	if *mode == "gap" {
		err := runGapSweep(w, cfg)
		if outFile != nil {
			if cerr := outFile.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	if *runFlag != "all" {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	known := map[string]bool{}
	for _, e := range registry {
		known[e.id] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "experiments: unknown ids: %s\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	failed := 0
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Fprintf(w, "\n================================================================\n")
		fmt.Fprintf(w, "[%s] %s\n", e.id, e.title)
		fmt.Fprintf(w, "================================================================\n")
		if err := e.run(w, cfg); err != nil {
			fmt.Fprintf(w, "ERROR: %v\n", err)
			failed++
		}
	}
	// The file carries the experiment tables; a close error means a
	// truncated results file, which must not pass silently.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
