package main

import (
	"fmt"
	"io"
	"math"
	"math/big"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/database"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
	"minimaxdp/internal/sample"
	"minimaxdp/internal/table"
)

// runECol reproduces the collusion experiment: eight privacy levels,
// colluders average their results. Against the naive independent
// release the attack's error falls roughly like 1/√k; against the
// Algorithm 1 cascade it never improves on the least-private result.
func runECol(w io.Writer, cfg config) error {
	levels := []string{"50/100", "51/100", "52/100", "53/100", "54/100", "55/100", "56/100", "57/100"}
	alphas := make([]*big.Rat, 0, len(levels))
	for _, s := range levels {
		alphas = append(alphas, rational.MustParse(s))
	}
	const n = 40
	const truth = 20
	plan, err := release.NewPlan(n, alphas)
	if err != nil {
		return err
	}
	rng := sample.NewRand(cfg.seed)
	naive, cascade, err := plan.CollusionExperiment(truth, cfg.trials, rng)
	if err != nil {
		return err
	}
	tb := table.New("colluders k", "naive mean |err|", "cascade mean |err|", "naive err × √k")
	for i := range naive {
		k := float64(naive[i].Colluders)
		tb.AddRow(
			fmt.Sprintf("%d", naive[i].Colluders),
			fmt.Sprintf("%.4f", naive[i].MeanAbsError),
			fmt.Sprintf("%.4f", cascade[i].MeanAbsError),
			fmt.Sprintf("%.4f", naive[i].MeanAbsError*math.Sqrt(k)),
		)
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nShape check (paper §2.6, §4.1): naive error falls with coalition size\n")
	fmt.Fprintf(w, "(≈ 1/√k Chernoff averaging); cascade error stays at the single\n")
	fmt.Fprintf(w, "least-private release — the coalition learns nothing extra (Lemma 4).\n")
	last := len(naive) - 1
	if naive[last].MeanAbsError >= naive[0].MeanAbsError {
		return fmt.Errorf("naive attack did not improve with colluders")
	}
	if cascade[last].MeanAbsError < cascade[0].MeanAbsError*0.95 {
		return fmt.Errorf("cascade attack improved with colluders: %v < %v",
			cascade[last].MeanAbsError, cascade[0].MeanAbsError)
	}
	fmt.Fprintf(w, "\nLemma 4 analytic guarantee: coalition {2..8} is protected at α = α₂;\n")
	a, err := plan.CollusionAlpha([]int{2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "CollusionAlpha({2..8}) = %s.\n", a.RatString())
	return nil
}

// runEBay reproduces the Section 2.7 comparison: geometric is
// universally optimal for Bayesian consumers too (Ghosh et al.), with
// deterministic post-processing, whereas minimax consumers need
// randomized post-processing.
func runEBay(w io.Writer, _ config) error {
	n := 3
	alpha := rational.MustParse("1/4")
	g, err := mechanism.Geometric(n, alpha)
	if err != nil {
		return err
	}

	tb := table.New("model", "loss", "prior/side", "interaction loss", "tailored loss", "equal", "post-processing")
	// Bayesian arms.
	priors := []struct {
		name string
		p    []*big.Rat
	}{
		{"uniform", consumer.UniformPrior(n)},
		{"skewed", []*big.Rat{rational.MustParse("1/2"), rational.MustParse("1/4"), rational.MustParse("1/8"), rational.MustParse("1/8")}},
	}
	for _, pr := range priors {
		for _, lf := range []loss.Function{loss.Absolute{}, loss.Squared{}} {
			b := &consumer.Bayesian{Loss: lf, Prior: pr.p}
			inter, err := consumer.OptimalBayesianInteraction(b, g)
			if err != nil {
				return err
			}
			tailored, err := consumer.OptimalBayesianMechanism(b, n, alpha)
			if err != nil {
				return err
			}
			eq := "yes"
			if inter.Loss.Cmp(tailored.Loss) != 0 {
				eq = "NO"
			}
			tb.AddRow("Bayesian", lf.Name(), pr.name, inter.Loss.RatString(), tailored.Loss.RatString(), eq, "deterministic")
			if eq == "NO" {
				return fmt.Errorf("Bayesian optimality failed for %s/%s", lf.Name(), pr.name)
			}
		}
	}
	// Minimax arms.
	for _, lf := range []loss.Function{loss.Absolute{}, loss.Squared{}} {
		c := &consumer.Consumer{Loss: lf}
		inter, err := consumer.OptimalInteraction(c, g)
		if err != nil {
			return err
		}
		tailored, err := consumer.OptimalMechanism(c, n, alpha)
		if err != nil {
			return err
		}
		eq := "yes"
		if inter.Loss.Cmp(tailored.Loss) != 0 {
			eq = "NO"
		}
		kind := "deterministic"
		for rr := 0; rr <= n; rr++ {
			nz := 0
			for rp := 0; rp <= n; rp++ {
				if inter.T.At(rr, rp).Sign() != 0 {
					nz++
				}
			}
			if nz > 1 {
				kind = "randomized"
			}
		}
		tb.AddRow("minimax", lf.Name(), "{0..n}", inter.Loss.RatString(), tailored.Loss.RatString(), eq, kind)
		if eq == "NO" {
			return fmt.Errorf("minimax optimality failed for %s", lf.Name())
		}
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nAs in §2.7: both consumer models are served optimally by the same\n")
	fmt.Fprintf(w, "deployed geometric mechanism; Bayesian remaps are deterministic,\n")
	fmt.Fprintf(w, "minimax remaps are (generally) randomized.\n")
	return nil
}

// runEObl reproduces Appendix A: averaging a non-oblivious DP
// mechanism over equal-query-result classes never increases the
// minimax loss.
func runEObl(w io.Writer, cfg config) error {
	uni, q := binaryUniverse()
	rng := sample.NewRand(cfg.seed)
	absLoss := func(i, r int) float64 { return math.Abs(float64(i - r)) }
	sqLoss := func(i, r int) float64 { d := float64(i - r); return d * d }
	tb := table.New("loss", "trials", "reduction ≤ original", "max improvement", "max regression")
	for _, arm := range []struct {
		name string
		fn   func(i, r int) float64
	}{{"absolute", absLoss}, {"squared", sqLoss}} {
		worse := 0
		maxImp, maxReg := 0.0, 0.0
		const trials = 200
		for trial := 0; trial < trials; trial++ {
			probs := make([][]float64, len(uni))
			for d := range probs {
				row := make([]float64, 3)
				sum := 0.0
				for r := range row {
					row[r] = rng.Float64()
					sum += row[r]
				}
				for r := range row {
					row[r] /= sum
				}
				probs[d] = row
			}
			m := &database.NonOblivious{Universe: uni, Query: q, Probs: probs}
			before, err := m.WorstCaseLoss(2, arm.fn)
			if err != nil {
				return err
			}
			reduced, err := m.ObliviousReduction(2)
			if err != nil {
				return err
			}
			after, err := m.ObliviousWorstCaseLoss(2, reduced, arm.fn)
			if err != nil {
				return err
			}
			if after > before+1e-9 {
				worse++
				if after-before > maxReg {
					maxReg = after - before
				}
			}
			if before-after > maxImp {
				maxImp = before - after
			}
		}
		ok := "yes"
		if worse > 0 {
			ok = fmt.Sprintf("NO (%d regressions)", worse)
		}
		tb.AddRow(arm.name, fmt.Sprintf("%d", trials), ok,
			fmt.Sprintf("%.4f", maxImp), fmt.Sprintf("%.4f", maxReg))
		if worse > 0 {
			return fmt.Errorf("oblivious reduction increased loss in %d/%d trials", worse, trials)
		}
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nLemma 6 (Appendix A) verified: restricting to oblivious mechanisms\n")
	fmt.Fprintf(w, "is without loss of generality for minimax consumers.\n")
	return nil
}

// binaryUniverse builds the 2-row binary-attribute universe used by
// the Appendix A experiment.
func binaryUniverse() ([]*database.Database, database.CountQuery) {
	mk := func(a, b bool) *database.Database {
		return database.New([]database.Row{
			{Name: "r0", Age: 30, City: "X", HasFlu: a},
			{Name: "r1", Age: 30, City: "X", HasFlu: b},
		})
	}
	q := database.CountQuery{Name: "ones", Pred: func(r database.Row) bool { return r.HasFlu }}
	return []*database.Database{mk(false, false), mk(false, true), mk(true, false), mk(true, true)}, q
}
