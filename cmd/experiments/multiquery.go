package main

import (
	"fmt"
	"io"

	"minimaxdp/internal/database"
	"minimaxdp/internal/multiquery"
	"minimaxdp/internal/privacy"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
	"minimaxdp/internal/table"
)

// runEMQ is the multiple-queries extension experiment (the paper's
// conclusion proposes the single-query geometric mechanism as a
// building block for multi-query answering). It tabulates the
// accuracy price of sequential budget splitting as the workload grows,
// and shows parallel composition recovering single-query accuracy on
// disjoint (histogram) workloads.
func runEMQ(w io.Writer, cfg config) error {
	total := rational.MustParse("1/2")
	const n = 50

	tb := table.New("k queries", "regime", "per-query α", "composed α", "guarantee ok", "per-query E|err| (exact)")
	for k := 1; k <= 8; k++ {
		a, err := multiquery.NewSequential(n, k, total, 10000)
		if err != nil {
			return err
		}
		composed, err := a.ComposedAlpha(k)
		if err != nil {
			return err
		}
		ok := "yes"
		if composed.Cmp(total) < 0 {
			ok = "NO"
		}
		tb.AddRow(fmt.Sprintf("%d", k), "sequential", a.PerQueryAlpha().RatString(),
			composed.RatString(), ok,
			fmt.Sprintf("%.4f", rational.Float(a.ExpectedAbsErrorPerQuery())))
		if ok == "NO" {
			return fmt.Errorf("sequential composition failed the guarantee at k=%d", k)
		}
	}
	par, err := multiquery.NewParallel(n, total)
	if err != nil {
		return err
	}
	tb.AddRow("any (disjoint)", "parallel", par.PerQueryAlpha().RatString(),
		total.RatString(), "yes",
		fmt.Sprintf("%.4f", rational.Float(par.ExpectedAbsErrorPerQuery())))
	if err := tb.Write(w); err != nil {
		return err
	}

	// Concrete histogram release on a synthetic database.
	rng := sample.NewRand(cfg.seed)
	db := database.Synthetic(n, "San Diego", 0.2, rng)
	hist, err := multiquery.AgeHistogram([]int{18, 40, 65})
	if err != nil {
		return err
	}
	if !hist.Disjoint(db) {
		return fmt.Errorf("histogram workload unexpectedly overlapping")
	}
	answers, err := par.Answer(db, hist, rng)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nage histogram released at full budget (parallel composition), α = %s:\n", total.RatString())
	ht := table.New("bucket", "true count", "released")
	for i, q := range hist.Queries {
		ht.AddRow(q.Name, fmt.Sprintf("%d", q.Eval(db)), fmt.Sprintf("%d", answers[i].Released))
	}
	if err := ht.Write(w); err != nil {
		return err
	}
	eps, err := privacy.EpsilonFromAlpha(rational.Float(total))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\noverall guarantee α = %s (ε = %.4f): one per-individual row change\n", total.RatString(), eps)
	fmt.Fprintf(w, "perturbs at most one bucket, so no budget splitting is needed.\n")
	return nil
}
