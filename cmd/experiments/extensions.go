package main

import (
	"fmt"
	"io"
	"math"
	"math/big"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/laplace"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/privacy"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/table"
)

// runEL5 validates Lemma 5 computationally: the lexicographically
// refined optimum (the tie-breaking the paper's proof uses) always has
// the adjacent-row "tight prefix / tight suffix" structure with at
// most one slack column, and the geometric mechanism itself has the
// structure with zero slack.
func runEL5(w io.Writer, _ config) error {
	n := 4
	tb := table.New("mechanism", "loss", "side", "α", "max slack", "structure")
	for _, as := range []string{"1/4", "1/2"} {
		alpha := rational.MustParse(as)
		g, err := mechanism.Geometric(n, alpha)
		if err != nil {
			return err
		}
		structs, err := consumer.CheckLemma5(g, alpha)
		if err != nil {
			return fmt.Errorf("geometric mechanism fails Lemma 5: %w", err)
		}
		maxSlack := 0
		for _, s := range structs {
			if s.Slack() > maxSlack {
				maxSlack = s.Slack()
			}
		}
		tb.AddRow("geometric", "—", "—", as, fmt.Sprintf("%d", maxSlack), "c2 = c1+1 everywhere")
	}
	losses := []loss.Function{loss.Absolute{}, loss.Squared{}, loss.ZeroOne{}}
	sides := []struct {
		name string
		set  []int
	}{{"{0..n}", nil}, {"{1..n}", consumer.Interval(1, n)}}
	for _, lf := range losses {
		for _, s := range sides {
			for _, as := range []string{"1/4", "1/2"} {
				alpha := rational.MustParse(as)
				c := &consumer.Consumer{Loss: lf, Side: s.set}
				tl, err := consumer.OptimalMechanismRefined(c, n, alpha)
				if err != nil {
					return err
				}
				structs, err := consumer.CheckLemma5(tl.Mechanism, alpha)
				if err != nil {
					return fmt.Errorf("refined optimum (%s, %s, α=%s) fails Lemma 5: %w",
						lf.Name(), s.name, as, err)
				}
				maxSlack := 0
				for _, st := range structs {
					if st.Slack() > maxSlack {
						maxSlack = st.Slack()
					}
				}
				tb.AddRow("refined optimum", lf.Name(), s.name, as,
					fmt.Sprintf("%d", maxSlack), "verified")
			}
		}
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nLemma 5 holds on every instance: the (L, L′)-lexicographic optimum\n")
	fmt.Fprintf(w, "has tight-prefix/tight-suffix rows with ≤ 1 slack column.\n")
	return nil
}

// runEPU traces the privacy–utility frontier the paper's model
// implies: the tailored optimal minimax loss as α sweeps from no
// privacy to perfect privacy, against the no-privacy (0) and
// best-constant baselines.
func runEPU(w io.Writer, _ config) error {
	n := 5
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	tb := table.New("α", "ε = −ln α", "optimal minimax loss (exact)", "≈", "E|geo noise| (unrestricted)")
	var prev *tailoredPoint
	for _, as := range []string{"0", "1/10", "1/4", "2/5", "1/2", "3/5", "3/4", "9/10", "1"} {
		alpha := rational.MustParse(as)
		tl, err := consumer.OptimalMechanism(c, n, alpha)
		if err != nil {
			return err
		}
		epsStr := "∞"
		if alpha.Sign() > 0 {
			eps, err := privacy.EpsilonFromAlpha(rational.Float(alpha))
			if err != nil {
				return err
			}
			epsStr = fmt.Sprintf("%.3f", eps)
		}
		noise := "—"
		if alpha.Sign() > 0 && rational.Float(alpha) < 1 {
			noise = fmt.Sprintf("%.4f", rational.Float(privacy.GeometricExpectedAbsNoise(alpha)))
		}
		tb.AddRow(as, epsStr, tl.Loss.RatString(),
			fmt.Sprintf("%.4f", rational.Float(tl.Loss)), noise)
		if prev != nil && tl.Loss.Cmp(prev.loss) < 0 {
			return fmt.Errorf("frontier not monotone: loss fell from %s to %s as α rose to %s",
				prev.loss.RatString(), tl.Loss.RatString(), as)
		}
		prev = &tailoredPoint{loss: tl.Loss}
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nFrontier endpoints match theory: loss 0 at α=0 (identity feasible)\n")
	fmt.Fprintf(w, "and the best-constant loss ⌈n/2⌉·(worst side) at α=1 (rows forced equal).\n")
	return nil
}

type tailoredPoint struct{ loss *big.Rat }

// runELap compares the geometric mechanism with the classical
// (continuous, then rounded) Laplace mechanism of the paper's
// reference [5] at matched privacy α = e^{−ε}.
func runELap(w io.Writer, _ config) error {
	const n = 20
	const truth = 10
	tb := table.New("ε", "α = e^{−ε}", "E|geo noise| (exact)", "E|Laplace| = 1/ε", "rounded-Laplace E|err|", "rounded-Laplace α", "geo wins")
	for _, eps := range []float64{0.25, 0.5, 1, 2} {
		alphaF := math.Exp(-eps)
		alpha, err := rational.FromFloat(alphaF)
		if err != nil {
			return err
		}
		geo := rational.Float(privacy.GeometricExpectedAbsNoise(alpha))
		lap, err := laplace.ExpectedAbsNoise(eps)
		if err != nil {
			return err
		}
		rounded, err := laplace.RoundedExpectedAbsError(truth, n, eps)
		if err != nil {
			return err
		}
		roundedAlpha, err := laplace.WorstAlpha(n, eps)
		if err != nil {
			return err
		}
		wins := "yes"
		if geo >= lap {
			wins = "NO"
		}
		tb.AddRow(fmt.Sprintf("%.2f", eps), fmt.Sprintf("%.4f", alphaF),
			fmt.Sprintf("%.4f", geo), fmt.Sprintf("%.4f", lap),
			fmt.Sprintf("%.4f", rounded), fmt.Sprintf("%.4f", roundedAlpha), wins)
		if geo >= lap {
			return fmt.Errorf("geometric did not beat continuous Laplace at ε=%v", eps)
		}
		if roundedAlpha < alphaF-1e-9 {
			return fmt.Errorf("rounded Laplace lost its DP level at ε=%v", eps)
		}
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nAt every matched privacy level the geometric mechanism's expected\n")
	fmt.Fprintf(w, "absolute error is below the continuous Laplace baseline (the discrete\n")
	fmt.Fprintf(w, "mechanism wastes no probability on fractional outputs), and rounding\n")
	fmt.Fprintf(w, "Laplace — being post-processing — keeps but cannot beat the geometric\n")
	fmt.Fprintf(w, "optimum that Theorem 1 guarantees.\n")
	return nil
}

// runERR quantifies universality against an in-class competitor:
// deploy randomized response instead of the geometric mechanism at the
// same exact privacy level, and measure how much worse every consumer
// does even after optimal post-processing. Theorem 1 says the
// geometric deployment achieves each consumer's tailored optimum, so
// the randomized-response column can only be ≥ — the experiment shows
// by how much.
func runERR(w io.Writer, _ config) error {
	n := 4
	tb := table.New("RR truth prob p", "matched α", "loss", "geo-deployed loss", "RR-deployed loss", "RR penalty")
	for _, ps := range []string{"1/4", "1/2", "3/4"} {
		p := rational.MustParse(ps)
		rr, err := mechanism.RandomizedResponse(n, p)
		if err != nil {
			return err
		}
		alpha := rr.BestAlpha()
		g, err := mechanism.Geometric(n, alpha)
		if err != nil {
			return err
		}
		for _, lf := range []loss.Function{loss.Absolute{}, loss.Squared{}} {
			c := &consumer.Consumer{Loss: lf}
			geoInter, err := consumer.OptimalInteraction(c, g)
			if err != nil {
				return err
			}
			rrInter, err := consumer.OptimalInteraction(c, rr)
			if err != nil {
				return err
			}
			if rrInter.Loss.Cmp(geoInter.Loss) < 0 {
				return fmt.Errorf("randomized response beat the geometric optimum at p=%s loss=%s", ps, lf.Name())
			}
			penalty := rational.Float(rrInter.Loss)/rational.Float(geoInter.Loss) - 1
			tb.AddRow(ps, alpha.RatString(), lf.Name(),
				geoInter.Loss.RatString(), rrInter.Loss.RatString(),
				fmt.Sprintf("+%.1f%%", 100*penalty))
		}
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nThe geometric deployment is never beaten (Theorem 1); randomized\n")
	fmt.Fprintf(w, "response costs every consumer extra loss at equal privacy.\n")
	return nil
}

// runEDet measures the value of randomization for minimax consumers
// (the §2.7 contrast): the best deterministic remap of the deployed
// geometric mechanism versus the optimal randomized remap, by
// exhaustive enumeration of all (n+1)^(n+1) deterministic maps.
func runEDet(w io.Writer, _ config) error {
	n := 3
	tb := table.New("loss", "side", "α", "randomized optimum", "best deterministic", "gap")
	for _, lf := range []loss.Function{loss.Absolute{}, loss.Squared{}, loss.ZeroOne{}} {
		for _, s := range []struct {
			name string
			set  []int
		}{{"{0..n}", nil}, {"{2}", []int{2}}} {
			for _, as := range []string{"1/4", "1/2"} {
				alpha := rational.MustParse(as)
				g, err := mechanism.Geometric(n, alpha)
				if err != nil {
					return err
				}
				c := &consumer.Consumer{Loss: lf, Side: s.set}
				randOpt, err := consumer.OptimalInteraction(c, g)
				if err != nil {
					return err
				}
				detOpt, err := consumer.OptimalDeterministicInteraction(c, g)
				if err != nil {
					return err
				}
				if detOpt.Loss.Cmp(randOpt.Loss) < 0 {
					return fmt.Errorf("deterministic beat randomized at %s/%s/%s", lf.Name(), s.name, as)
				}
				gap := "0"
				if detOpt.Loss.Cmp(randOpt.Loss) > 0 {
					g := rational.Float(detOpt.Loss)/rational.Float(randOpt.Loss) - 1
					gap = fmt.Sprintf("+%.1f%%", 100*g)
				}
				tb.AddRow(lf.Name(), s.name, as, randOpt.Loss.RatString(), detOpt.Loss.RatString(), gap)
			}
		}
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n§2.7's contrast, quantified: minimax consumers with non-trivial side\n")
	fmt.Fprintf(w, "information need randomized post-processing (positive gaps); with a\n")
	fmt.Fprintf(w, "singleton side set the problem degenerates and determinism is free.\n")
	return nil
}
