// The -mode=gap sweep: the mechanism-design workbench as a batch
// experiment. It drives the engine's compare artifact class over a
// grid of domain sizes, privacy levels, and consumers — the built-in
// losses, seeded-random side sets, and Bayesian priors — scoring the
// default baseline set (geometric, staircase, laplace) against each
// consumer's tailored optimum.
//
// The sweep doubles as a test oracle: Theorem 1 part 2 says every
// minimax consumer's geometric gap is exactly zero, so the sweep
// HARD-FAILS (non-zero exit through main) the moment any minimax
// geometric row shows a nonzero gap, and prints a certificate line
// counting the identities it verified. Bayesian rows and the other
// baselines are reported as gap tables — the paper's point being that
// those gaps are generally nonzero.

package main

import (
	"fmt"
	"io"
	"math/big"
	"math/rand"

	"minimaxdp/internal/baseline"
	"minimaxdp/internal/consumer"
	"minimaxdp/internal/engine"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
)

// gapNs and gapAlphas fix the sweep grid; small n keeps the full
// sweep (grid × consumers × baselines LP solves) interactive.
var gapNs = []int{2, 3, 4}

func gapAlphas() []*big.Rat {
	return []*big.Rat{rational.New(1, 4), rational.New(1, 2), rational.New(2, 3)}
}

func gapLosses() []loss.Function {
	return []loss.Function{loss.Absolute{}, loss.Squared{}, loss.ZeroOne{}, loss.Deadband{Width: 1}}
}

// randomSide draws a nonempty random subset of {0..n}.
func randomSide(rng *rand.Rand, n int) []int {
	var side []int
	for i := 0; i <= n; i++ {
		if rng.Intn(2) == 1 {
			side = append(side, i)
		}
	}
	if len(side) == 0 {
		side = []int{rng.Intn(n + 1)}
	}
	return side
}

// randomPrior draws a full-support random prior on {0..n} with small
// integer weights, normalized exactly.
func randomPrior(rng *rand.Rand, n int) []*big.Rat {
	weights := make([]int64, n+1)
	var total int64
	for i := range weights {
		weights[i] = int64(1 + rng.Intn(4))
		total += weights[i]
	}
	out := make([]*big.Rat, n+1)
	for i, wt := range weights {
		out[i] = rational.New(wt, total)
	}
	return out
}

// gapModels assembles the consumer panel for one (n, α) cell: every
// built-in loss full-domain, two random side-informed minimax
// consumers, and two Bayesian consumers (uniform and random prior).
func gapModels(rng *rand.Rand, n int) []consumer.Model {
	losses := gapLosses()
	models := make([]consumer.Model, 0, len(losses)+4)
	for _, lf := range losses {
		models = append(models, &consumer.Consumer{Loss: lf})
	}
	for k := 0; k < 2; k++ {
		models = append(models, &consumer.Consumer{
			Loss: losses[rng.Intn(len(losses))],
			Side: randomSide(rng, n),
		})
	}
	models = append(models,
		&consumer.Bayesian{Loss: loss.Absolute{}, Prior: consumer.UniformPrior(n)},
		&consumer.Bayesian{Loss: losses[rng.Intn(len(losses))], Prior: randomPrior(rng, n)},
	)
	return models
}

// runGapSweep executes the sweep and writes the gap tables plus the
// zero-gap certificate line. Any nonzero minimax geometric gap is an
// error: the Theorem 1 oracle has been violated.
func runGapSweep(w io.Writer, cfg config) error {
	eng := engine.New(engine.Config{Seed: cfg.seed})
	rng := sample.NewRand(cfg.seed)
	var certified, rows int
	for _, n := range gapNs {
		for _, alpha := range gapAlphas() {
			for _, m := range gapModels(rng, n) {
				mk, err := m.Key(n)
				if err != nil {
					return err
				}
				cmp, err := eng.Compare(engine.CompareSpec{N: n, Alpha: alpha, Model: m})
				if err != nil {
					return fmt.Errorf("compare n=%d α=%s %s: %w", n, alpha.RatString(), mk, err)
				}
				if err := cmp.Validate(); err != nil {
					return fmt.Errorf("compare n=%d α=%s %s: %w", n, alpha.RatString(), mk, err)
				}
				for _, e := range cmp.Entries {
					rows++
					fmt.Fprintf(w, "n=%d α=%-4s %-8s %-40s %-11s tailored=%-8s interact=%-8s gap=%s\n",
						n, alpha.RatString(), cmp.Model, mk, e.Spec,
						cmp.TailoredLoss.RatString(), e.InteractionLoss.RatString(), e.Gap.RatString())
					if cmp.Model != "minimax" || e.Spec != string(baseline.Geometric) {
						continue
					}
					if e.Gap.Sign() != 0 {
						return fmt.Errorf(
							"ZERO-GAP CERTIFICATE VIOLATED: n=%d α=%s %s geometric gap = %s (Theorem 1 part 2 demands exactly 0)",
							n, alpha.RatString(), mk, e.Gap.RatString())
					}
					certified++
				}
			}
		}
	}
	fmt.Fprintf(w, "\nTheorem 1 zero-gap certificate: %d minimax consumer identities verified (geometric gap exactly 0), %d gap rows total\n",
		certified, rows)
	if certified == 0 {
		return fmt.Errorf("gap sweep certified nothing — sweep grid is broken")
	}
	return nil
}
