package main

import (
	"strings"
	"testing"
)

// TestGapSweep runs the full -mode=gap sweep: it must certify at
// least one minimax identity per grid cell (a violated certificate is
// an error, so success here IS the Theorem 1 oracle), and the gap
// tables must cover both models and every default baseline.
func TestGapSweep(t *testing.T) {
	var b strings.Builder
	if err := runGapSweep(&b, config{seed: 7, trials: 10}); err != nil {
		t.Fatalf("gap sweep: %v\noutput so far:\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "zero-gap certificate") {
		t.Error("missing certificate line")
	}
	for _, want := range []string{"geometric", "staircase", "laplace", "minimax", "bayesian", "gap=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
	// The sweep is deterministic in its seed: same seed, same tables.
	var b2 strings.Builder
	if err := runGapSweep(&b2, config{seed: 7, trials: 10}); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("gap sweep not deterministic for a fixed seed")
	}
	var b3 strings.Builder
	if err := runGapSweep(&b3, config{seed: 8, trials: 10}); err != nil {
		t.Fatalf("seed 8: %v", err)
	}
	if b3.String() == out {
		t.Error("gap sweep ignored its seed (random consumer panel never varied)")
	}
}
