package main

import (
	"fmt"
	"io"
	"math"
	"strings"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
	"minimaxdp/internal/table"
)

// runF1 reproduces Figure 1: the two-sided geometric output
// distribution for α = 0.2 and true result 5, both exactly (the
// Definition 1 law) and empirically (the Definition 1 sampler), with
// an ASCII rendering of the paper's plot.
func runF1(w io.Writer, cfg config) error {
	const alpha = 0.2
	const result = 5
	rng := sample.NewRand(cfg.seed)
	trials := cfg.trials * 10
	counts := make(map[int]int)
	for i := 0; i < trials; i++ {
		counts[result+sample.TwoSidedGeometric(alpha, rng)]++
	}
	tb := table.New("z", "exact Pr[out=z]", "empirical", "plot")
	norm := (1 - alpha) / (1 + alpha)
	for z := -20; z <= 20; z++ {
		exact := norm * math.Pow(alpha, math.Abs(float64(z-result)))
		emp := float64(counts[z]) / float64(trials)
		bar := strings.Repeat("#", int(exact*60+0.5))
		tb.AddRow(fmt.Sprintf("%d", z), fmt.Sprintf("%.6f", exact), fmt.Sprintf("%.6f", emp), bar)
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nPaper: Figure 1 shows this PMF peaked at the true result 5 with\n")
	fmt.Fprintf(w, "geometric tails of ratio α = 0.2. Reproduced exactly above.\n")
	return nil
}

// runT1 reproduces Table 1 end to end: (b) the geometric mechanism
// G_{3,1/4}, (c) the optimal consumer interaction, and (a) the induced
// optimal mechanism, for the consumer with loss |i−r| and side
// information {0..3}.
func runT1(w io.Writer, _ config) error {
	alpha := rational.MustParse("1/4")
	n := 3
	g, err := mechanism.Geometric(n, alpha)
	if err != nil {
		return err
	}
	c := &consumer.Consumer{Loss: loss.Absolute{}}

	inter, err := consumer.OptimalInteraction(c, g)
	if err != nil {
		return err
	}
	tailored, err := consumer.OptimalMechanism(c, n, alpha)
	if err != nil {
		return err
	}

	if err := table.WriteMatrix(w, "Table 1(b): G_{3,1/4} (exact; paper prints it scaled by (1+α)/(1−α) = 5/3):", g.Matrix()); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := table.WriteMatrix(w, "scaled by 5/3 (paper's rendering):", g.Matrix().Scale(rational.MustParse("5/3"))); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := table.WriteMatrix(w, "Table 1(c): optimal consumer interaction T* (exact):", inter.T); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := table.WriteMatrix(w, "Table 1(a): induced optimal mechanism G·T* (exact):", inter.Induced.Matrix()); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := table.WriteMatrixFloat(w, "Table 1(a) in decimals:", inter.Induced.Matrix(), 4); err != nil {
		return err
	}

	// The paper's printed Table 1(c) for comparison.
	paperT := matrix.MustFromStrings([][]string{
		{"9/11", "2/11", "0", "0"},
		{"0", "1", "0", "0"},
		{"0", "0", "1", "0"},
		{"0", "0", "2/11", "9/11"},
	})
	paperInduced, err := g.PostProcess(paperT)
	if err != nil {
		return err
	}
	paperLoss, err := c.MinimaxLoss(paperInduced)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nminimax loss: LP optimum (tailored) = %s ≈ %.6f\n",
		tailored.Loss.RatString(), rational.Float(tailored.Loss))
	fmt.Fprintf(w, "minimax loss: optimal interaction    = %s ≈ %.6f\n",
		inter.Loss.RatString(), rational.Float(inter.Loss))
	fmt.Fprintf(w, "minimax loss: paper's printed T      = %s ≈ %.6f\n",
		paperLoss.RatString(), rational.Float(paperLoss))
	fmt.Fprintf(w, "\nNOTE: the paper's printed Table 1 entries carry transcription\n")
	fmt.Fprintf(w, "errors (Table 1(a) rows sum to > 1). The exact optimum is 168/415\n")
	fmt.Fprintf(w, "with boundary interaction (68/83, 15/83); the printed (9/11, 2/11)\n")
	fmt.Fprintf(w, "achieves the slightly worse 357/880. Shape (interior rows identity,\n")
	fmt.Fprintf(w, "boundary rows randomizing over two outputs) matches the paper.\n")
	if tailored.Loss.Cmp(inter.Loss) != 0 {
		return fmt.Errorf("universal optimality violated: %s vs %s",
			tailored.Loss.RatString(), inter.Loss.RatString())
	}
	return nil
}

// runT2 reproduces Table 2: the closed forms of G_{n,α} and G'_{n,α},
// verifying the structural identities entry by entry for a grid of
// sizes and privacy levels.
func runT2(w io.Writer, _ config) error {
	alpha := rational.MustParse("1/4")
	n := 3
	g, err := mechanism.Geometric(n, alpha)
	if err != nil {
		return err
	}
	gp, err := mechanism.GeometricPrime(n, alpha)
	if err != nil {
		return err
	}
	if err := table.WriteMatrix(w, "G_{3,1/4}:", g.Matrix()); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := table.WriteMatrix(w, "G'_{3,1/4} (pure Toeplitz α^{|i−j|}):", gp); err != nil {
		return err
	}

	tb := table.New("n", "α", "structure check", "row sums")
	for _, as := range []string{"1/4", "1/2", "3/4"} {
		a := rational.MustParse(as)
		for nn := 2; nn <= 8; nn++ {
			gg, err := mechanism.Geometric(nn, a)
			if err != nil {
				return err
			}
			ggp, err := mechanism.GeometricPrime(nn, a)
			if err != nil {
				return err
			}
			ok := true
			for i := 0; i <= nn && ok; i++ {
				for j := 0; j <= nn && ok; j++ {
					d := i - j
					if d < 0 {
						d = -d
					}
					if ggp.At(i, j).Cmp(rational.Pow(a, d)) != 0 {
						ok = false
					}
				}
			}
			status := "α^{|i−j|} verified"
			if !ok {
				status = "MISMATCH"
			}
			sums := "all = 1"
			if !gg.Matrix().IsStochastic() {
				sums = "BROKEN"
			}
			tb.AddRow(fmt.Sprintf("%d", nn), as, status, sums)
		}
	}
	fmt.Fprintln(w)
	return tb.Write(w)
}
