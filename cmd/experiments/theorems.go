package main

import (
	"fmt"
	"io"
	"math/big"
	"math/rand"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/derive"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/matrix"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/sample"
	"minimaxdp/internal/table"
)

// runEB reproduces Appendix B: the explicit ½-DP mechanism that is not
// derivable from G_{3,1/2}, with its violating triple.
func runEB(w io.Writer, _ config) error {
	m := derive.AppendixB()
	alpha := rational.MustParse("1/2")
	if err := table.WriteMatrix(w, "Appendix B mechanism M:", m.Matrix()); err != nil {
		return err
	}
	if err := m.CheckDP(alpha); err != nil {
		return fmt.Errorf("M should be 1/2-DP: %w", err)
	}
	fmt.Fprintf(w, "\nM is 1/2-differentially private: verified.\n")
	err := derive.CheckCondition(m, alpha)
	if err == nil {
		return fmt.Errorf("M unexpectedly satisfies the Theorem 2 condition")
	}
	fmt.Fprintf(w, "Theorem 2 condition: %v\n", err)
	fmt.Fprintf(w, "Paper reports the same violation: (1+α²)·M[1][1] − α·(M[0][1]+M[2][1]) = −0.75/9 = −1/12.\n")
	if _, ferr := derive.Factor(m, alpha); ferr == nil {
		return fmt.Errorf("factorization unexpectedly succeeded")
	} else {
		fmt.Fprintf(w, "Factorization G⁻¹·M has a negative entry: %v\n", ferr)
	}
	return nil
}

// runETh2 validates Theorem 2 as an equivalence on randomly generated
// DP mechanisms: the three-term condition holds iff G⁻¹·M ≥ 0.
func runETh2(w io.Writer, cfg config) error {
	rng := sample.NewRand(cfg.seed)
	alpha := rational.MustParse("1/2")
	tb := table.New("trial family", "checked", "derivable", "not derivable", "disagreements")
	families := []struct {
		name string
		gen  func(n int) (*mechanism.Mechanism, error)
	}{
		{"G·random-T (always derivable)", func(n int) (*mechanism.Mechanism, error) {
			g, err := mechanism.Geometric(n, alpha)
			if err != nil {
				return nil, err
			}
			return g.PostProcess(randomStochastic(rng, n+1))
		}},
		{"mix(G, uniform)", func(n int) (*mechanism.Mechanism, error) {
			return mixGeometricUniform(n, alpha, rng)
		}},
		{"randomized response", func(n int) (*mechanism.Mechanism, error) {
			return mechanism.RandomizedResponse(n, rational.New(int64(1+rng.Intn(3)), 4))
		}},
	}
	for _, fam := range families {
		checked, derivable, not, disagree := 0, 0, 0, 0
		for trial := 0; trial < 40; trial++ {
			n := 2 + rng.Intn(4)
			m, err := fam.gen(n)
			if err != nil {
				return err
			}
			condOK := derive.Derivable(m, alpha)
			_, ferr := derive.Factor(m, alpha)
			factorOK := ferr == nil
			checked++
			if condOK != factorOK {
				disagree++
			}
			if condOK {
				derivable++
			} else {
				not++
			}
		}
		tb.AddRow(fam.name, fmt.Sprintf("%d", checked), fmt.Sprintf("%d", derivable),
			fmt.Sprintf("%d", not), fmt.Sprintf("%d", disagree))
		if disagree > 0 {
			return fmt.Errorf("Theorem 2 equivalence violated in family %q", fam.name)
		}
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nCondition ⇔ factorization agreed on every instance (exact arithmetic).\n")
	return nil
}

// runEL1 tabulates det G_{n,α}: positive, and equal to the Lemma 1
// closed form.
func runEL1(w io.Writer, _ config) error {
	tb := table.New("n", "α", "det G (direct)", "det G (closed form)", "match", "> 0")
	for _, as := range []string{"1/4", "1/2", "3/5", "9/10"} {
		a := rational.MustParse(as)
		for n := 1; n <= 9; n++ {
			g, err := mechanism.Geometric(n, a)
			if err != nil {
				return err
			}
			direct, err := g.Matrix().Det()
			if err != nil {
				return err
			}
			closed := mechanism.GeometricDet(n, a)
			match := "yes"
			if direct.Cmp(closed) != 0 {
				match = "NO"
			}
			pos := "yes"
			if direct.Sign() <= 0 {
				pos = "NO"
			}
			tb.AddRow(fmt.Sprintf("%d", n), as, direct.RatString(), closed.RatString(), match, pos)
			if direct.Cmp(closed) != 0 || direct.Sign() <= 0 {
				return fmt.Errorf("Lemma 1 fails at n=%d α=%s", n, as)
			}
		}
	}
	return tb.Write(w)
}

// runEL3 verifies Lemma 3 on a grid: T_{α,β} = G_α⁻¹·G_β is stochastic
// exactly when α ≤ β, and the reverse direction fails.
func runEL3(w io.Writer, _ config) error {
	grid := []string{"1/5", "1/4", "1/3", "1/2", "2/3", "3/4", "4/5"}
	n := 4
	tb := table.New("α", "β", "T stochastic", "G_α·T == G_β")
	for i, as := range grid {
		for j, bs := range grid {
			a, b := rational.MustParse(as), rational.MustParse(bs)
			if j < i {
				// α > β: must be rejected.
				if _, err := derive.Transition(n, a, b); err == nil {
					return fmt.Errorf("transition from α=%s to β=%s (removing privacy) accepted", as, bs)
				}
				continue
			}
			tr, err := derive.Transition(n, a, b)
			if err != nil {
				return err
			}
			gA, err := mechanism.Geometric(n, a)
			if err != nil {
				return err
			}
			gB, err := mechanism.Geometric(n, b)
			if err != nil {
				return err
			}
			prod, err := gA.Matrix().Mul(tr)
			if err != nil {
				return err
			}
			stoch, eq := "yes", "yes"
			if !tr.IsStochastic() {
				stoch = "NO"
			}
			if !prod.Equal(gB.Matrix()) {
				eq = "NO"
			}
			tb.AddRow(as, bs, stoch, eq)
			if stoch == "NO" || eq == "NO" {
				return fmt.Errorf("Lemma 3 fails at α=%s β=%s", as, bs)
			}
		}
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nAll α > β pairs correctly rejected (privacy cannot be removed).\n")
	return nil
}

// runETh1 sweeps consumers (losses × side-information × α) and checks
// the paper's headline claim exactly: optimal interaction with the
// deployed geometric mechanism always equals the tailored optimum.
func runETh1(w io.Writer, _ config) error {
	n := 4
	losses := []loss.Function{loss.Absolute{}, loss.Squared{}, loss.ZeroOne{},
		loss.Deadband{Width: 1}, loss.Power{K: 3}}
	sides := []struct {
		name string
		set  []int
	}{
		{"{0..n}", nil},
		{"{1..n}", consumer.Interval(1, n)},
		{"{0..2}", consumer.Interval(0, 2)},
		{"{0,2,4}", []int{0, 2, 4}},
		{"{3}", []int{3}},
	}
	alphas := []string{"1/4", "1/2", "3/4"}
	tb := table.New("loss", "side info", "α", "tailored loss", "interaction loss", "equal")
	checked, equal := 0, 0
	for _, lf := range losses {
		for _, s := range sides {
			for _, as := range alphas {
				alpha := rational.MustParse(as)
				c := &consumer.Consumer{Loss: lf, Side: s.set}
				g, err := mechanism.Geometric(n, alpha)
				if err != nil {
					return err
				}
				tailored, err := consumer.OptimalMechanism(c, n, alpha)
				if err != nil {
					return err
				}
				inter, err := consumer.OptimalInteraction(c, g)
				if err != nil {
					return err
				}
				checked++
				eq := "yes"
				if tailored.Loss.Cmp(inter.Loss) != 0 {
					eq = "NO"
				} else {
					equal++
				}
				tb.AddRow(lf.Name(), s.name, as, tailored.Loss.RatString(), inter.Loss.RatString(), eq)
			}
		}
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nUniversal optimality held on %d/%d consumer instances (exact equality).\n", equal, checked)
	if equal != checked {
		return fmt.Errorf("universal optimality failed on %d instances", checked-equal)
	}
	return nil
}

func randomStochastic(rng *rand.Rand, dim int) *matrix.Matrix {
	m := matrix.New(dim, dim)
	for i := 0; i < dim; i++ {
		ws := make([]int64, dim)
		var sum int64
		for j := range ws {
			ws[j] = int64(rng.Intn(6))
			sum += ws[j]
		}
		if sum == 0 {
			ws[i], sum = 1, 1
		}
		for j := range ws {
			m.Set(i, j, rational.New(ws[j], sum))
		}
	}
	return m
}

func mixGeometricUniform(n int, alpha *big.Rat, rng *rand.Rand) (*mechanism.Mechanism, error) {
	g, err := mechanism.Geometric(n, alpha)
	if err != nil {
		return nil, err
	}
	u, err := mechanism.Uniform(n)
	if err != nil {
		return nil, err
	}
	lambda := rational.New(int64(rng.Intn(4)), 4)
	gm, um := g.Matrix(), u.Matrix()
	mix := matrix.New(n+1, n+1)
	for i := 0; i <= n; i++ {
		for j := 0; j <= n; j++ {
			a := rational.Mul(lambda, gm.At(i, j))
			b := rational.Mul(rational.Sub(rational.One(), lambda), um.At(i, j))
			mix.Set(i, j, rational.Add(a, b))
		}
	}
	return mechanism.New(mix)
}
