package main

import (
	"strings"
	"testing"
)

var testCfg = config{seed: 1, trials: 1500}

func runExperiment(t *testing.T, id string) string {
	t.Helper()
	for _, e := range registry {
		if e.id != id {
			continue
		}
		var b strings.Builder
		if err := e.run(&b, testCfg); err != nil {
			t.Fatalf("%s failed: %v\noutput so far:\n%s", id, err, b.String())
		}
		return b.String()
	}
	t.Fatalf("experiment %s not registered", id)
	return ""
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range registry {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %s", e.id)
		}
		seen[e.id] = true
		if e.title == "" || e.run == nil {
			t.Errorf("experiment %s incomplete", e.id)
		}
	}
}

func TestF1(t *testing.T) {
	out := runExperiment(t, "F1")
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "#") {
		t.Errorf("F1 output:\n%s", out)
	}
}

func TestT1(t *testing.T) {
	out := runExperiment(t, "T1")
	for _, want := range []string{"168/415", "357/880", "68/83", "4/5"} {
		if !strings.Contains(out, want) {
			t.Errorf("T1 output missing %q", want)
		}
	}
}

func TestT2(t *testing.T) {
	out := runExperiment(t, "T2")
	if !strings.Contains(out, "α^{|i−j|} verified") || strings.Contains(out, "MISMATCH") {
		t.Errorf("T2 output:\n%s", out)
	}
}

func TestEB(t *testing.T) {
	out := runExperiment(t, "EB")
	if !strings.Contains(out, "-1/12") {
		t.Errorf("EB output missing violation value:\n%s", out)
	}
}

func TestETh2(t *testing.T) {
	out := runExperiment(t, "ETh2")
	if !strings.Contains(out, "agreed on every instance") {
		t.Errorf("ETh2 output:\n%s", out)
	}
}

func TestEL1(t *testing.T) {
	out := runExperiment(t, "EL1")
	if strings.Contains(out, "NO") {
		t.Errorf("EL1 output has failures:\n%s", out)
	}
}

func TestEL3(t *testing.T) {
	out := runExperiment(t, "EL3")
	if !strings.Contains(out, "correctly rejected") {
		t.Errorf("EL3 output:\n%s", out)
	}
}

func TestETh1(t *testing.T) {
	out := runExperiment(t, "ETh1")
	if !strings.Contains(out, "75/75") {
		t.Errorf("ETh1 coverage:\n%s", out)
	}
}

func TestECol(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo")
	}
	out := runExperiment(t, "ECol")
	if !strings.Contains(out, "CollusionAlpha({2..8}) = 51/100") {
		t.Errorf("ECol output:\n%s", out)
	}
}

func TestEBay(t *testing.T) {
	out := runExperiment(t, "EBay")
	if !strings.Contains(out, "randomized") || !strings.Contains(out, "deterministic") {
		t.Errorf("EBay output:\n%s", out)
	}
}

func TestEObl(t *testing.T) {
	out := runExperiment(t, "EObl")
	if !strings.Contains(out, "verified") {
		t.Errorf("EObl output:\n%s", out)
	}
}

func TestEMQ(t *testing.T) {
	out := runExperiment(t, "EMQ")
	if !strings.Contains(out, "parallel") || !strings.Contains(out, "sequential") {
		t.Errorf("EMQ output:\n%s", out)
	}
	if !strings.Contains(out, "age histogram") {
		t.Errorf("EMQ missing histogram release:\n%s", out)
	}
}

func TestEL5(t *testing.T) {
	out := runExperiment(t, "EL5")
	if !strings.Contains(out, "c2 = c1+1 everywhere") || !strings.Contains(out, "verified") {
		t.Errorf("EL5 output:\n%s", out)
	}
}

func TestEPU(t *testing.T) {
	out := runExperiment(t, "EPU")
	if !strings.Contains(out, "5/2") { // α=1 best-constant loss on n=5
		t.Errorf("EPU output:\n%s", out)
	}
}

func TestELap(t *testing.T) {
	out := runExperiment(t, "ELap")
	if strings.Contains(out, "NO") {
		t.Errorf("ELap has losses:\n%s", out)
	}
}

func TestERR(t *testing.T) {
	out := runExperiment(t, "ERR")
	if !strings.Contains(out, "RR penalty") || !strings.Contains(out, "never beaten") {
		t.Errorf("ERR output:\n%s", out)
	}
}

func TestEDet(t *testing.T) {
	out := runExperiment(t, "EDet")
	if !strings.Contains(out, "best deterministic") {
		t.Errorf("EDet output:\n%s", out)
	}
}
