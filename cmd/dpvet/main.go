// Command dpvet runs this module's custom static-analysis suite: the
// machine-checked invariants behind the paper reproduction (exact
// rational arithmetic with flow-sensitive float-taint tracking,
// overflow-checked fixed-width kernels, allocation-free hot paths,
// single seedable randomness source, no silently dropped errors, no
// *big.Rat aliasing).
//
// Usage:
//
//	go run ./cmd/dpvet ./...          # whole module (the CI gate)
//	go run ./cmd/dpvet -list          # describe the analyzers
//	go run ./cmd/dpvet -run randsource,errdiscard ./internal/...
//	go run ./cmd/dpvet -json ./...    # machine-readable findings
//	go run ./cmd/dpvet -sarif ./...   # SARIF 2.1.0 for code scanning
//
// dpvet exits 0 when no findings survive, 1 when findings are
// reported, and 2 on usage or load errors (-json and -sarif keep the
// same codes; the findings just land on stdout in the requested
// format). Suppress an individual finding with a justified directive
// on or above the offending line:
//
//	//dpvet:ignore <analyzer> <justification>
//
// The justification is required — the ignoreaudit analyzer reports
// bare directives, and directives that no longer suppress anything.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"minimaxdp/internal/analysis"
	"minimaxdp/internal/analysis/load"
	"minimaxdp/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dpvet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "write findings to stdout as JSON")
	asSARIF := fs.Bool("sarif", false, "write findings to stdout as SARIF 2.1.0")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dpvet [-list] [-run a,b] [-json|-sarif] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(os.Stderr, "dpvet: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers := registry.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = filter(analyzers, *only)
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "dpvet: -run %q matches no analyzers (try -list)\n", *only)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Kick off the escape-analysis build (hotpath's fact source) while
	// the loader parses and type-checks: the two shell out to
	// independent toolchain commands and overlap almost entirely.
	shared := analysis.NewShared(".", patterns...)
	shared.Prefetch()
	res, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpvet:", err)
		return 2
	}
	diags := analysis.Run(res, analyzers, shared)

	switch {
	case *asJSON:
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, "dpvet:", err)
			return 2
		}
	case *asSARIF:
		if err := writeSARIF(os.Stdout, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, "dpvet:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dpvet: %d finding(s) in %d package(s)\n", len(diags), len(res.Pkgs))
		return 1
	}
	return 0
}

func filter(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// relPath maps the loader's absolute filenames back to paths relative
// to the working directory, which is what both output formats want
// (SARIF resolves them against %SRCROOT%, the checkout root in CI).
func relPath(file string) string {
	wd, err := os.Getwd()
	if err != nil {
		return file
	}
	rel, err := filepath.Rel(wd, file)
	if err != nil {
		return file
	}
	return filepath.ToSlash(rel)
}

// jsonFinding is one entry of the dpvet/1 JSON schema.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, diags []analysis.Diagnostic) error {
	out := struct {
		Version  string        `json:"version"`
		Findings []jsonFinding `json:"findings"`
	}{Version: "dpvet/1", Findings: make([]jsonFinding, 0, len(diags))}
	for _, d := range diags {
		out.Findings = append(out.Findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0, the minimal subset GitHub code scanning consumes: one
// run, one rule per analyzer (Doc as help text), one result per
// finding with a physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(w *os.File, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relPath(d.Pos.Filename), URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "dpvet", Rules: rules}}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
