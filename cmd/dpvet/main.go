// Command dpvet runs this module's custom static-analysis suite: the
// machine-checked invariants behind the paper reproduction (exact
// rational arithmetic, single seedable randomness source, no silently
// dropped errors, no *big.Rat aliasing).
//
// Usage:
//
//	go run ./cmd/dpvet ./...          # whole module (the CI gate)
//	go run ./cmd/dpvet -list          # describe the analyzers
//	go run ./cmd/dpvet -run randsource,errdiscard ./internal/...
//
// dpvet exits 0 when no findings survive, 1 when findings are
// reported, and 2 on usage or load errors. Suppress an individual
// finding with a justified directive on or above the offending line:
//
//	//dpvet:ignore <analyzer> <justification>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"minimaxdp/internal/analysis"
	"minimaxdp/internal/analysis/load"
	"minimaxdp/internal/analysis/registry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dpvet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dpvet [-list] [-run a,b] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := registry.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = filter(analyzers, *only)
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "dpvet: -run %q matches no analyzers (try -list)\n", *only)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpvet:", err)
		return 2
	}
	diags := analysis.Run(res, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dpvet: %d finding(s) in %d package(s)\n", len(diags), len(res.Pkgs))
		return 1
	}
	return 0
}

func filter(all []*analysis.Analyzer, names string) []*analysis.Analyzer {
	want := make(map[string]bool)
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
