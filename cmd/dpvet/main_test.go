package main

import (
	"testing"

	"minimaxdp/internal/analysis/registry"
)

func TestListExitsZero(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("run(-list) = %d, want 0", got)
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	if got := run([]string{"-run", "nosuchanalyzer"}); got != 2 {
		t.Fatalf("run(-run nosuchanalyzer) = %d, want 2", got)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	if got := run([]string{"-definitely-not-a-flag"}); got != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", got)
	}
}

// TestFixtureExitsOne points the real binary entry at a deliberately
// violating fixture package and expects the findings exit code.
func TestFixtureExitsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	got := run([]string{"../../internal/analysis/errdiscard/testdata/src/errdiscard"})
	if got != 1 {
		t.Fatalf("run(errdiscard fixture) = %d, want 1", got)
	}
}

// TestSelfCleanExitsZero runs the suite over dpvet's own sources.
func TestSelfCleanExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	if got := run([]string{"./..."}); got != 0 {
		t.Fatalf("run(./...) = %d, want 0", got)
	}
}

func TestFilter(t *testing.T) {
	if got := filter(registry.All(), "randsource , errdiscard"); len(got) != 2 {
		t.Fatalf("filter matched %d analyzers, want 2", len(got))
	}
	if got := filter(registry.All(), ""); len(got) != 0 {
		t.Fatalf("empty filter matched %d analyzers, want 0", len(got))
	}
}
