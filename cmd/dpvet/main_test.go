package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"minimaxdp/internal/analysis/registry"
)

func TestListExitsZero(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("run(-list) = %d, want 0", got)
	}
}

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	if got := run([]string{"-run", "nosuchanalyzer"}); got != 2 {
		t.Fatalf("run(-run nosuchanalyzer) = %d, want 2", got)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	if got := run([]string{"-definitely-not-a-flag"}); got != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", got)
	}
}

// TestFixtureExitsOne points the real binary entry at a deliberately
// violating fixture package and expects the findings exit code.
func TestFixtureExitsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	got := run([]string{"../../internal/analysis/errdiscard/testdata/src/errdiscard"})
	if got != 1 {
		t.Fatalf("run(errdiscard fixture) = %d, want 1", got)
	}
}

// TestSelfCleanExitsZero runs the suite over dpvet's own sources.
func TestSelfCleanExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	if got := run([]string{"./..."}); got != 0 {
		t.Fatalf("run(./...) = %d, want 0", got)
	}
}

func TestJSONAndSARIFExclusive(t *testing.T) {
	if got := run([]string{"-json", "-sarif"}); got != 2 {
		t.Fatalf("run(-json -sarif) = %d, want 2", got)
	}
}

// TestJSONOutput round-trips the machine-readable format over a
// violating fixture: valid dpvet/1 JSON, non-empty findings,
// cwd-relative paths, and the findings exit code preserved.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	out := captureStdout(t, func() {
		if got := run([]string{"-json", "../../internal/analysis/errdiscard/testdata/src/errdiscard"}); got != 1 {
			t.Errorf("run(-json fixture) = %d, want 1", got)
		}
	})
	var doc struct {
		Version  string `json:"version"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if doc.Version != "dpvet/1" {
		t.Errorf("version = %q, want dpvet/1", doc.Version)
	}
	if len(doc.Findings) == 0 {
		t.Fatal("JSON output has no findings for a violating fixture")
	}
	for _, f := range doc.Findings {
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path %q is absolute, want cwd-relative", f.File)
		}
		if f.Analyzer == "" || f.Message == "" || f.Line <= 0 {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

// TestSARIFOutput checks the code-scanning format: SARIF 2.1.0, the
// dpvet driver, one rule per analyzer in the run, and located results.
func TestSARIFOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short")
	}
	out := captureStdout(t, func() {
		if got := run([]string{"-sarif", "../../internal/analysis/errdiscard/testdata/src/errdiscard"}); got != 1 {
			t.Errorf("run(-sarif fixture) = %d, want 1", got)
		}
	})
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("sarif has %d runs, want 1", len(doc.Runs))
	}
	r := doc.Runs[0]
	if r.Tool.Driver.Name != "dpvet" {
		t.Errorf("driver name = %q, want dpvet", r.Tool.Driver.Name)
	}
	if len(r.Tool.Driver.Rules) != len(registry.All()) {
		t.Errorf("sarif has %d rules, want %d (one per analyzer)", len(r.Tool.Driver.Rules), len(registry.All()))
	}
	if len(r.Results) == 0 {
		t.Fatal("SARIF output has no results for a violating fixture")
	}
	for _, res := range r.Results {
		if res.RuleID == "" || len(res.Locations) != 1 ||
			res.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" ||
			res.Locations[0].PhysicalLocation.Region.StartLine <= 0 {
			t.Errorf("incomplete result: %+v", res)
		}
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and
// returns everything written.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	fn()
	os.Stdout = old
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return <-done
}

func TestFilter(t *testing.T) {
	if got := filter(registry.All(), "randsource , errdiscard"); len(got) != 2 {
		t.Fatalf("filter matched %d analyzers, want 2", len(got))
	}
	if got := filter(registry.All(), ""); len(got) != 0 {
		t.Fatalf("empty filter matched %d analyzers, want 0", len(got))
	}
}
