// Command privmech is the library's command-line front end: it builds
// geometric mechanisms, verifies differential privacy, solves the
// optimal-consumer linear programs, checks derivability, and runs
// multi-level releases.
//
// Subcommands:
//
//	privmech geometric -n 10 -alpha 1/2            print G_{n,α}
//	privmech verify -n 10 -alpha 1/2 -file m.txt   check α-DP of a matrix
//	privmech optimal -n 5 -alpha 1/2 -loss absolute -side 2:5
//	privmech interact -n 5 -alpha 1/2 -loss squared -side 0:3
//	privmech release -n 100 -levels 1/4,1/2,3/4 -true 42 [-seed 7]
//	privmech derivable -alpha 1/2 -file m.txt      Theorem 2 check
//
// Matrices are read as whitespace-separated rational rows, one row per
// line (e.g. "1/2 1/4 1/4").
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"strconv"
	"strings"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/derive"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/privacy"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
	"minimaxdp/internal/sample"
	"minimaxdp/internal/stats"
	"minimaxdp/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "privmech:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		usage(w)
		return errors.New("missing subcommand")
	}
	switch args[0] {
	case "geometric":
		return cmdGeometric(args[1:], w)
	case "verify":
		return cmdVerify(args[1:], w)
	case "optimal":
		return cmdOptimal(args[1:], w)
	case "interact":
		return cmdInteract(args[1:], w)
	case "release":
		return cmdRelease(args[1:], w)
	case "views":
		return cmdViews(args[1:], w)
	case "bayes":
		return cmdBayes(args[1:], w)
	case "moments":
		return cmdMoments(args[1:], w)
	case "audit":
		return cmdAudit(args[1:], w)
	case "derivable":
		return cmdDerivable(args[1:], w)
	case "help", "-h", "--help":
		usage(w)
		return nil
	default:
		usage(w)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: privmech <subcommand> [flags]

subcommands:
  geometric   print the range-restricted geometric mechanism G_{n,α}
  verify      check a mechanism matrix for α-differential privacy
  optimal     solve the tailored optimal-mechanism LP for a consumer
  interact    solve the optimal post-processing LP against G_{n,α}
  release     publish a result at multiple privacy levels (Algorithm 1)
  derivable   Theorem 2 check: is the matrix derivable from G_{n,α}?
  audit       empirically estimate a mechanism matrix's privacy level
  moments     exact accuracy profile (E|noise|, variance, tail bounds) of G_α
  views       per-level optimal consumer losses of a multi-level release
  bayes       Bayes-optimal deterministic remap of G_α for a prior
  help        print this message
`)
}

func parseAlpha(s string) (*big.Rat, error) {
	a, err := rational.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("bad -alpha: %w", err)
	}
	return a, nil
}

// parseSide parses "lo:hi" or a comma-separated list into a side set.
func parseSide(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	if strings.Contains(s, ":") {
		parts := strings.SplitN(s, ":", 2)
		lo, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad -side: %w", err)
		}
		hi, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad -side: %w", err)
		}
		set := consumer.Interval(lo, hi)
		if set == nil {
			return nil, fmt.Errorf("bad -side: empty interval %s", s)
		}
		return set, nil
	}
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -side: %w", err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseLoss(name string) (loss.Function, error) {
	switch name {
	case "absolute", "abs", "l1":
		return loss.Absolute{}, nil
	case "squared", "l2":
		return loss.Squared{}, nil
	case "zero-one", "01":
		return loss.ZeroOne{}, nil
	default:
		if strings.HasPrefix(name, "deadband:") {
			wd, err := strconv.Atoi(strings.TrimPrefix(name, "deadband:"))
			if err != nil || wd < 0 {
				return nil, fmt.Errorf("bad -loss %q", name)
			}
			return loss.Deadband{Width: wd}, nil
		}
		return nil, fmt.Errorf("unknown -loss %q (absolute|squared|zero-one|deadband:W)", name)
	}
}

// readMatrix loads a whitespace-separated rational matrix from a file
// ("-" for stdin).
func readMatrix(path string) (*mechanism.Mechanism, error) {
	var rd io.Reader
	if path == "-" {
		rd = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		//dpvet:ignore errdiscard file is opened read-only and fully drained by the scanner below; Close has no failure mode that matters here
		defer f.Close()
		rd = f
	}
	var rows [][]string
	sc := bufio.NewScanner(rd)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rows = append(rows, strings.Fields(line))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, errors.New("empty matrix file")
	}
	return mechanism.FromStrings(rows)
}

func cmdGeometric(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("geometric", flag.ContinueOnError)
	n := fs.Int("n", 10, "database size")
	alphaStr := fs.String("alpha", "1/2", "privacy parameter α in (0,1)")
	decimals := fs.Bool("decimals", false, "print decimals instead of exact rationals")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	g, err := mechanism.Geometric(*n, alpha)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("G_{%d,%s}:", *n, alpha.RatString())
	if *decimals {
		return table.WriteMatrixFloat(w, title, g.Matrix(), 4)
	}
	return table.WriteMatrix(w, title, g.Matrix())
}

func cmdVerify(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	alphaStr := fs.String("alpha", "1/2", "privacy parameter α")
	file := fs.String("file", "-", "matrix file (- for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	m, err := readMatrix(*file)
	if err != nil {
		return err
	}
	if err := m.CheckDP(alpha); err != nil {
		fmt.Fprintf(w, "NOT %s-differentially private: %v\n", alpha.RatString(), err)
		return nil
	}
	fmt.Fprintf(w, "%s-differentially private: OK\n", alpha.RatString())
	fmt.Fprintf(w, "best (largest) α: %s\n", m.BestAlpha().RatString())
	return nil
}

func cmdOptimal(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("optimal", flag.ContinueOnError)
	n := fs.Int("n", 5, "database size")
	alphaStr := fs.String("alpha", "1/2", "privacy parameter α")
	lossName := fs.String("loss", "absolute", "loss function")
	sideStr := fs.String("side", "", "side information (lo:hi or comma list; empty = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	lf, err := parseLoss(*lossName)
	if err != nil {
		return err
	}
	side, err := parseSide(*sideStr)
	if err != nil {
		return err
	}
	c := &consumer.Consumer{Loss: lf, Side: side}
	tl, err := consumer.OptimalMechanism(c, *n, alpha)
	if err != nil {
		return err
	}
	if err := table.WriteMatrix(w, "optimal tailored mechanism:", tl.Mechanism.Matrix()); err != nil {
		return err
	}
	fmt.Fprintf(w, "minimax loss: %s ≈ %.6f\n", tl.Loss.RatString(), rational.Float(tl.Loss))
	return nil
}

func cmdInteract(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("interact", flag.ContinueOnError)
	n := fs.Int("n", 5, "database size")
	alphaStr := fs.String("alpha", "1/2", "privacy parameter α")
	lossName := fs.String("loss", "absolute", "loss function")
	sideStr := fs.String("side", "", "side information (lo:hi or comma list; empty = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	lf, err := parseLoss(*lossName)
	if err != nil {
		return err
	}
	side, err := parseSide(*sideStr)
	if err != nil {
		return err
	}
	g, err := mechanism.Geometric(*n, alpha)
	if err != nil {
		return err
	}
	c := &consumer.Consumer{Loss: lf, Side: side}
	inter, err := consumer.OptimalInteraction(c, g)
	if err != nil {
		return err
	}
	if err := table.WriteMatrix(w, "optimal post-processing T*:", inter.T); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := table.WriteMatrix(w, "induced mechanism G·T*:", inter.Induced.Matrix()); err != nil {
		return err
	}
	fmt.Fprintf(w, "minimax loss: %s ≈ %.6f\n", inter.Loss.RatString(), rational.Float(inter.Loss))
	return nil
}

func cmdRelease(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("release", flag.ContinueOnError)
	n := fs.Int("n", 100, "database size")
	levelsStr := fs.String("levels", "1/4,1/2", "comma-separated increasing privacy levels")
	trueResult := fs.Int("true", 0, "true query result")
	seed := fs.Int64("seed", 1, "PRNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var alphas []*big.Rat
	for _, s := range strings.Split(*levelsStr, ",") {
		a, err := rational.Parse(s)
		if err != nil {
			return fmt.Errorf("bad -levels: %w", err)
		}
		alphas = append(alphas, a)
	}
	plan, err := release.NewPlan(*n, alphas)
	if err != nil {
		return err
	}
	out, err := plan.Release(*trueResult, sample.NewRand(*seed))
	if err != nil {
		return err
	}
	tb := table.New("level", "α", "released result")
	for i, v := range out {
		a, err := plan.Alpha(i + 1)
		if err != nil {
			return err
		}
		tb.AddRow(fmt.Sprintf("%d", i+1), a.RatString(), fmt.Sprintf("%d", v))
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncollusion guarantee: any coalition is protected at its smallest level's α (Lemma 4).\n")
	return nil
}

func cmdDerivable(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("derivable", flag.ContinueOnError)
	alphaStr := fs.String("alpha", "1/2", "privacy parameter α")
	file := fs.String("file", "-", "matrix file (- for stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	m, err := readMatrix(*file)
	if err != nil {
		return err
	}
	if err := derive.CheckCondition(m, alpha); err != nil {
		fmt.Fprintf(w, "NOT derivable from G_{%d,%s}: %v\n", m.N(), alpha.RatString(), err)
		return nil
	}
	t, err := derive.Factor(m, alpha)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "derivable from G_{%d,%s}; post-processing T:\n", m.N(), alpha.RatString())
	return table.WriteMatrix(w, "", t)
}

func cmdAudit(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	file := fs.String("file", "-", "matrix file (- for stdin)")
	trials := fs.Int("trials", 100000, "samples per input")
	seed := fs.Int64("seed", 1, "PRNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trials <= 0 {
		return fmt.Errorf("trials must be positive, got %d", *trials)
	}
	m, err := readMatrix(*file)
	if err != nil {
		return err
	}
	exact := m.BestAlpha()
	res, err := stats.AuditDP(m, *trials, sample.NewRand(*seed))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "exact privacy level (BestAlpha):   %s ≈ %.4f\n", exact.RatString(), rational.Float(exact))
	fmt.Fprintf(w, "empirical (black-box) audit level: %.4f (worst at inputs %d,%d output %d; %d samples/input)\n",
		res.WorstAlpha, res.I, res.I+1, res.R, res.Trials)
	return nil
}

func cmdMoments(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("moments", flag.ContinueOnError)
	alphaStr := fs.String("alpha", "1/2", "privacy parameter α")
	maxT := fs.Int("maxt", 8, "largest tail threshold to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	if alpha.Sign() <= 0 || rational.Float(alpha) >= 1 {
		return fmt.Errorf("moments needs α in (0,1), got %s", alpha.RatString())
	}
	if *maxT < 1 {
		return fmt.Errorf("maxt must be ≥ 1, got %d", *maxT)
	}
	eps, err := privacy.EpsilonFromAlpha(rational.Float(alpha))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "geometric mechanism accuracy at α = %s (ε = %.4f):\n", alpha.RatString(), eps)
	eAbs := privacy.GeometricExpectedAbsNoise(alpha)
	vr := privacy.GeometricNoiseVariance(alpha)
	fmt.Fprintf(w, "  E|noise|    = %s ≈ %.4f\n", eAbs.RatString(), rational.Float(eAbs))
	fmt.Fprintf(w, "  Var(noise)  = %s ≈ %.4f\n", vr.RatString(), rational.Float(vr))
	tb := table.New("t", "Pr[|noise| ≥ t] (exact)", "≈")
	for t := 1; t <= *maxT; t++ {
		tail := privacy.GeometricTailBound(alpha, t)
		tb.AddRow(fmt.Sprintf("%d", t), tail.RatString(), fmt.Sprintf("%.6f", rational.Float(tail)))
	}
	return tb.Write(w)
}

func cmdViews(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("views", flag.ContinueOnError)
	n := fs.Int("n", 5, "database size")
	levelsStr := fs.String("levels", "1/4,1/2,3/4", "comma-separated increasing privacy levels")
	lossName := fs.String("loss", "absolute", "loss function")
	sideStr := fs.String("side", "", "side information (lo:hi or comma list; empty = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var alphas []*big.Rat
	for _, s := range strings.Split(*levelsStr, ",") {
		a, err := rational.Parse(s)
		if err != nil {
			return fmt.Errorf("bad -levels: %w", err)
		}
		alphas = append(alphas, a)
	}
	lf, err := parseLoss(*lossName)
	if err != nil {
		return err
	}
	side, err := parseSide(*sideStr)
	if err != nil {
		return err
	}
	plan, err := release.NewPlan(*n, alphas)
	if err != nil {
		return err
	}
	c := &consumer.Consumer{Loss: lf, Side: side}
	views, err := plan.ViewsFor(c)
	if err != nil {
		return err
	}
	tb := table.New("level", "α", "optimal minimax loss", "≈")
	for _, v := range views {
		tb.AddRow(fmt.Sprintf("%d", v.Level), v.Alpha.RatString(),
			v.Interaction.Loss.RatString(),
			fmt.Sprintf("%.6f", rational.Float(v.Interaction.Loss)))
	}
	if err := tb.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\neach row is the consumer's tailored optimum at that level (Theorem 1).\n")
	return nil
}

func cmdBayes(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bayes", flag.ContinueOnError)
	n := fs.Int("n", 5, "database size")
	alphaStr := fs.String("alpha", "1/2", "privacy parameter α")
	lossName := fs.String("loss", "absolute", "loss function")
	priorStr := fs.String("prior", "", "comma-separated prior over {0..n} (empty = uniform)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	lf, err := parseLoss(*lossName)
	if err != nil {
		return err
	}
	prior := consumer.UniformPrior(*n)
	if *priorStr != "" {
		parts := strings.Split(*priorStr, ",")
		prior = prior[:0]
		for _, ps := range parts {
			v, err := rational.Parse(ps)
			if err != nil {
				return fmt.Errorf("bad -prior: %w", err)
			}
			prior = append(prior, v)
		}
	}
	b := &consumer.Bayesian{Loss: lf, Prior: prior}
	g, err := mechanism.Geometric(*n, alpha)
	if err != nil {
		return err
	}
	inter, err := consumer.OptimalBayesianInteraction(b, g)
	if err != nil {
		return err
	}
	tailored, err := consumer.OptimalBayesianMechanism(b, *n, alpha)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Bayes-optimal deterministic remap of G_{%d,%s}:\n", *n, alpha.RatString())
	for r, to := range inter.Remap {
		fmt.Fprintf(w, "  output %d → %d\n", r, to)
	}
	fmt.Fprintf(w, "expected loss (interaction): %s ≈ %.6f\n", inter.Loss.RatString(), rational.Float(inter.Loss))
	fmt.Fprintf(w, "expected loss (tailored LP): %s ≈ %.6f\n", tailored.Loss.RatString(), rational.Float(tailored.Loss))
	if inter.Loss.Cmp(tailored.Loss) == 0 {
		fmt.Fprintf(w, "Bayesian universal optimality verified on this instance (Ghosh et al.).\n")
	} else {
		return fmt.Errorf("Bayesian optimality mismatch: %s vs %s", inter.Loss.RatString(), tailored.Loss.RatString())
	}
	return nil
}
