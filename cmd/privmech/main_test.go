package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	return b.String(), err
}

func TestUsageAndUnknown(t *testing.T) {
	out, err := runCmd(t, "help")
	if err != nil || !strings.Contains(out, "subcommands") {
		t.Errorf("help: %v\n%s", err, out)
	}
	if _, err := runCmd(t, "bogus"); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if _, err := runCmd(t); err == nil {
		t.Error("missing subcommand accepted")
	}
}

func TestGeometricCommand(t *testing.T) {
	out, err := runCmd(t, "geometric", "-n", "3", "-alpha", "1/4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4/5") || !strings.Contains(out, "G_{3,1/4}") {
		t.Errorf("output:\n%s", out)
	}
	out, err = runCmd(t, "geometric", "-n", "3", "-alpha", "1/4", "-decimals")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0.8000") {
		t.Errorf("decimal output:\n%s", out)
	}
	if _, err := runCmd(t, "geometric", "-alpha", "zzz"); err == nil {
		t.Error("bad alpha accepted")
	}
	if _, err := runCmd(t, "geometric", "-n", "0"); err == nil {
		t.Error("n=0 accepted")
	}
}

func writeMatrixFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifyCommand(t *testing.T) {
	// G_{1,1/2} is 1/2-DP.
	path := writeMatrixFile(t, "# comment line\n2/3 1/3\n1/3 2/3\n")
	out, err := runCmd(t, "verify", "-alpha", "1/2", "-file", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OK") || !strings.Contains(out, "best (largest) α: 1/2") {
		t.Errorf("output:\n%s", out)
	}
	// Identity is not 1/2-DP.
	idPath := writeMatrixFile(t, "1 0\n0 1\n")
	out, err = runCmd(t, "verify", "-alpha", "1/2", "-file", idPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NOT") {
		t.Errorf("output:\n%s", out)
	}
	if _, err := runCmd(t, "verify", "-file", filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
	empty := writeMatrixFile(t, "\n# nothing\n")
	if _, err := runCmd(t, "verify", "-file", empty); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestOptimalCommand(t *testing.T) {
	out, err := runCmd(t, "optimal", "-n", "3", "-alpha", "1/4", "-loss", "absolute")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "minimax loss: 168/415") {
		t.Errorf("output:\n%s", out)
	}
	if _, err := runCmd(t, "optimal", "-loss", "bogus"); err == nil {
		t.Error("bad loss accepted")
	}
	if _, err := runCmd(t, "optimal", "-side", "x:y"); err == nil {
		t.Error("bad side accepted")
	}
}

func TestInteractCommand(t *testing.T) {
	out, err := runCmd(t, "interact", "-n", "3", "-alpha", "1/4", "-loss", "absolute")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "minimax loss: 168/415") || !strings.Contains(out, "68/83") {
		t.Errorf("output:\n%s", out)
	}
	out, err = runCmd(t, "interact", "-n", "4", "-alpha", "1/2", "-loss", "deadband:1", "-side", "1:3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "induced mechanism") {
		t.Errorf("output:\n%s", out)
	}
	if _, err := runCmd(t, "interact", "-side", "5:2"); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestReleaseCommand(t *testing.T) {
	out, err := runCmd(t, "release", "-n", "20", "-levels", "1/4,1/2,3/4", "-true", "10", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "released result") || !strings.Contains(out, "collusion guarantee") {
		t.Errorf("output:\n%s", out)
	}
	// Deterministic for equal seeds.
	out2, err := runCmd(t, "release", "-n", "20", "-levels", "1/4,1/2,3/4", "-true", "10", "-seed", "7")
	if err != nil {
		t.Fatal(err)
	}
	if out != out2 {
		t.Error("same seed produced different releases")
	}
	if _, err := runCmd(t, "release", "-levels", "1/2,1/4"); err == nil {
		t.Error("decreasing levels accepted")
	}
	if _, err := runCmd(t, "release", "-levels", "zzz"); err == nil {
		t.Error("bad levels accepted")
	}
}

func TestDerivableCommand(t *testing.T) {
	// Appendix B matrix: NOT derivable from G_{3,1/2}.
	appendixB := "1/9 2/9 4/9 2/9\n2/9 1/9 2/9 4/9\n4/9 2/9 1/9 2/9\n13/18 1/9 1/18 1/9\n"
	path := writeMatrixFile(t, appendixB)
	out, err := runCmd(t, "derivable", "-alpha", "1/2", "-file", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NOT derivable") {
		t.Errorf("output:\n%s", out)
	}
	// G_{1,1/2} is derivable from itself with T = I.
	gPath := writeMatrixFile(t, "2/3 1/3\n1/3 2/3\n")
	out, err = runCmd(t, "derivable", "-alpha", "1/2", "-file", gPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "derivable from G_{1,1/2}") {
		t.Errorf("output:\n%s", out)
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := parseSide("1,2,3"); err != nil {
		t.Error(err)
	}
	if _, err := parseSide("1,x"); err == nil {
		t.Error("bad list accepted")
	}
	if s, err := parseSide(""); err != nil || s != nil {
		t.Error("empty side should be nil")
	}
	if _, err := parseLoss("deadband:2"); err != nil {
		t.Error(err)
	}
	if _, err := parseLoss("deadband:x"); err == nil {
		t.Error("bad deadband accepted")
	}
	for _, name := range []string{"abs", "l1", "l2", "01", "zero-one", "squared"} {
		if _, err := parseLoss(name); err != nil {
			t.Errorf("loss %q rejected: %v", name, err)
		}
	}
}

func TestAuditCommand(t *testing.T) {
	path := writeMatrixFile(t, "2/3 1/3\n1/3 2/3\n")
	out, err := runCmd(t, "audit", "-file", path, "-trials", "50000", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "exact privacy level (BestAlpha):   1/2") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "empirical") {
		t.Errorf("output:\n%s", out)
	}
	if _, err := runCmd(t, "audit", "-trials", "0", "-file", path); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := runCmd(t, "audit", "-file", "/nonexistent"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestMomentsCommand(t *testing.T) {
	out, err := runCmd(t, "moments", "-alpha", "1/2", "-maxt", "3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E|noise|    = 4/3", "Var(noise)  = 4", "2/3", "1/6"} {
		if !strings.Contains(out, want) {
			t.Errorf("moments output missing %q:\n%s", want, out)
		}
	}
	if _, err := runCmd(t, "moments", "-alpha", "1"); err == nil {
		t.Error("α=1 accepted")
	}
	if _, err := runCmd(t, "moments", "-maxt", "0"); err == nil {
		t.Error("maxt=0 accepted")
	}
	if _, err := runCmd(t, "moments", "-alpha", "zz"); err == nil {
		t.Error("bad α accepted")
	}
}

func TestViewsCommand(t *testing.T) {
	out, err := runCmd(t, "views", "-n", "4", "-levels", "1/4,1/2", "-loss", "absolute")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "200/439") || !strings.Contains(out, "36/43") {
		t.Errorf("views output:\n%s", out)
	}
	if _, err := runCmd(t, "views", "-levels", "zzz"); err == nil {
		t.Error("bad levels accepted")
	}
	if _, err := runCmd(t, "views", "-loss", "zzz"); err == nil {
		t.Error("bad loss accepted")
	}
	if _, err := runCmd(t, "views", "-side", "x:y"); err == nil {
		t.Error("bad side accepted")
	}
	if _, err := runCmd(t, "views", "-levels", "1/2,1/4"); err == nil {
		t.Error("decreasing levels accepted")
	}
}

func TestBayesCommand(t *testing.T) {
	out, err := runCmd(t, "bayes", "-n", "3", "-alpha", "1/4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "57/160") || !strings.Contains(out, "verified") {
		t.Errorf("bayes output:\n%s", out)
	}
	out, err = runCmd(t, "bayes", "-n", "2", "-alpha", "1/2", "-prior", "1/2,1/4,1/4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "verified") {
		t.Errorf("custom prior output:\n%s", out)
	}
	if _, err := runCmd(t, "bayes", "-prior", "zzz"); err == nil {
		t.Error("bad prior accepted")
	}
	if _, err := runCmd(t, "bayes", "-n", "3", "-prior", "1/2,1/2"); err == nil {
		t.Error("wrong-length prior accepted")
	}
	if _, err := runCmd(t, "bayes", "-alpha", "zz"); err == nil {
		t.Error("bad alpha accepted")
	}
	if _, err := runCmd(t, "bayes", "-loss", "zz"); err == nil {
		t.Error("bad loss accepted")
	}
}
