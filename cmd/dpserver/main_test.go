package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/rational"
)

func newTestServer(t *testing.T) *server {
	t.Helper()
	s, err := newServer(serverConfig{N: 200, City: "San Diego", FluRate: 0.1, Levels: "1/2,2/3", Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, mux http.Handler, path string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	var body map[string]interface{}
	if rec.Header().Get("Content-Type") == "application/json" {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec, body
}

func TestNewServerValidation(t *testing.T) {
	if _, err := newServer(serverConfig{N: 100, City: "X", FluRate: 0.1, Levels: "zzz", Seed: 1}); err == nil {
		t.Error("bad levels accepted")
	}
	if _, err := newServer(serverConfig{N: 100, City: "X", FluRate: 0.1, Levels: "1/2,1/4", Seed: 1}); err == nil {
		t.Error("decreasing levels accepted")
	}
}

func TestParseLevels(t *testing.T) {
	alphas, err := parseLevels("1/2, 2/3 ,4/5")
	if err != nil {
		t.Fatal(err)
	}
	if len(alphas) != 3 || alphas[2].RatString() != "4/5" {
		t.Errorf("alphas = %v", alphas)
	}
	for _, bad := range []string{"", ",", "1/2,", "0,1/2", "1,1/2", "1/2,1/2", "2/3,1/2", "-1/2", "3/2"} {
		if _, err := parseLevels(bad); err == nil {
			t.Errorf("parseLevels(%q) accepted", bad)
		}
	}
}

func TestParseLossAndSide(t *testing.T) {
	for name, want := range map[string]string{
		"": "absolute", "absolute": "absolute", "squared": "squared",
		"zero-one": "zero-one", "deadband": "deadband(1)",
	} {
		_, lf, err := (consumerSpec{Loss: name}).build(8)
		if err != nil {
			t.Fatalf("build(loss=%q): %v", name, err)
		}
		if lf.Name() != want {
			t.Errorf("build(loss=%q).Name() = %q, want %q", name, lf.Name(), want)
		}
	}
	if _, lf, err := (consumerSpec{Loss: "deadband", Width: "3"}).build(8); err != nil || lf.Name() != "deadband(3)" {
		t.Errorf("deadband width 3: %v %v", lf, err)
	}
	if _, _, err := (consumerSpec{Loss: "deadband", Width: "-1"}).build(8); err == nil {
		t.Error("negative width accepted")
	}
	if _, _, err := (consumerSpec{Loss: "nope"}).build(8); err == nil {
		t.Error("unknown loss accepted")
	}
	// A width on a width-less family is refused, not silently dropped —
	// the registry owns that rule for every surface.
	if _, _, err := (consumerSpec{Loss: "absolute", Width: "2"}).build(8); err == nil {
		t.Error("width on absolute accepted")
	}
	side, err := parseSide("3-6")
	if err != nil || len(side) != 4 || side[0] != 3 {
		t.Errorf("parseSide(3-6) = %v, %v", side, err)
	}
	if s, err := parseSide(""); err != nil || s != nil {
		t.Errorf("empty side = %v, %v", s, err)
	}
	for _, bad := range []string{"6-3", "x-3", "3-x", "-1-3", "3"} {
		if _, err := parseSide(bad); err == nil {
			t.Errorf("parseSide(%q) accepted", bad)
		}
	}
}

func TestRootAndLevels(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	rec, body := get(t, mux, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("root status %d", rec.Code)
	}
	if body["levels"].(float64) != 2 {
		t.Errorf("levels = %v", body["levels"])
	}
	rec, _ = get(t, mux, "/nope")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status %d", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/levels", nil)
	lrec := httptest.NewRecorder()
	mux.ServeHTTP(lrec, req)
	var levels []map[string]interface{}
	if err := json.Unmarshal(lrec.Body.Bytes(), &levels); err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 || levels[0]["alpha"] != "1/2" || levels[1]["alpha"] != "2/3" {
		t.Errorf("levels = %v", levels)
	}
}

func TestResultEndpoint(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	rec, body := get(t, mux, "/v1/result?level=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if body["alpha"] != "1/2" {
		t.Errorf("alpha = %v", body["alpha"])
	}
	result := int(body["result"].(float64))
	if result < 0 || result > 200 {
		t.Errorf("result %d outside [0,200]", result)
	}
	// Default level is 1.
	_, body = get(t, mux, "/v1/result")
	if body["level"].(float64) != 1 {
		t.Errorf("default level = %v", body["level"])
	}
	// Same epoch → same result (correlated release is cached per epoch).
	_, body2 := get(t, mux, "/v1/result?level=1")
	if body2["result"] != body["result"] {
		t.Error("result changed within an epoch")
	}
	// Bad levels.
	rec, _ = get(t, mux, "/v1/result?level=0")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("level=0 status %d", rec.Code)
	}
	rec, _ = get(t, mux, "/v1/result?level=99")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("level=99 status %d", rec.Code)
	}
	rec, _ = get(t, mux, "/v1/result?level=x")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("level=x status %d", rec.Code)
	}
}

func TestEpochEndpoint(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	_, before := get(t, mux, "/v1/result?level=1")
	req := httptest.NewRequest(http.MethodPost, "/v1/epoch", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("epoch status %d", rec.Code)
	}
	var body map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["epoch"] != 2 {
		t.Errorf("epoch = %d, want 2", body["epoch"])
	}
	_, after := get(t, mux, "/v1/result?level=1")
	if after["epoch"].(float64) != 2 {
		t.Errorf("result epoch = %v", after["epoch"])
	}
	_ = before // values may coincide by chance; epoch must advance

	// GET /epoch is rejected.
	gRec, _ := get(t, mux, "/v1/epoch")
	if gRec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /epoch status %d", gRec.Code)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

func TestMechanismEndpoint(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	req := httptest.NewRequest(http.MethodGet, "/v1/mechanism?level=1", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		N    int        `json:"n"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.N != 200 || len(body.Rows) != 201 {
		t.Errorf("mechanism shape n=%d rows=%d", body.N, len(body.Rows))
	}
	// Bad levels rejected.
	for _, q := range []string{"/v1/mechanism?level=0", "/v1/mechanism?level=99", "/v1/mechanism?level=x"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, q, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s status %d", q, rec.Code)
		}
	}
}

func TestTailoredEndpoint(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	rec, body := get(t, mux, "/v1/tailored?loss=absolute&n=8&level=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	// The served optimum must equal the direct §2.5 solve.
	want, err := consumer.OptimalMechanism(
		&consumer.Consumer{Loss: loss.Absolute{}}, 8, rational.MustParse("1/2"))
	if err != nil {
		t.Fatal(err)
	}
	if body["minimax_loss"] != want.Loss.RatString() {
		t.Errorf("minimax_loss = %v, want %s", body["minimax_loss"], want.Loss.RatString())
	}
	// Repeat request is a cache hit.
	if _, body = get(t, mux, "/v1/tailored?loss=absolute&n=8&level=1"); body["minimax_loss"] != want.Loss.RatString() {
		t.Errorf("cached minimax_loss = %v", body["minimax_loss"])
	}
	if hits := s.eng.Metrics().Tailored.Cache.Hits; hits < 1 {
		t.Errorf("tailored cache hits = %d, want ≥1", hits)
	}
	// Side information and explicit alpha.
	rec, body = get(t, mux, "/v1/tailored?loss=squared&n=6&alpha=1/3&side=2-5")
	if rec.Code != http.StatusOK || body["side"] != "2-5" || body["alpha"] != "1/3" {
		t.Errorf("tailored with side: %d %v", rec.Code, body)
	}
	// mech=1 includes the mechanism matrix.
	_, body = get(t, mux, "/v1/tailored?loss=absolute&n=4&level=1&mech=1")
	if body["mechanism"] == nil {
		t.Error("mech=1 did not include the mechanism")
	}
	// Rejections: bad loss, oversized n, bad alpha, bad side.
	for _, q := range []string{
		"/v1/tailored?loss=nope&n=4",
		"/v1/tailored?n=9999",
		"/v1/tailored?n=0",
		"/v1/tailored?alpha=zzz&n=4",
		"/v1/tailored?side=9-2&n=4",
		"/v1/tailored?loss=deadband&width=x&n=4",
	} {
		rec, _ := get(t, mux, q)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s status %d, want 400", q, rec.Code)
		}
	}
}

func TestSampleEndpoint(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	rec, body := get(t, mux, "/v1/sample?level=1&input=100&count=50")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	draws := body["draws"].([]interface{})
	if len(draws) != 50 {
		t.Fatalf("draws = %d, want 50", len(draws))
	}
	for _, d := range draws {
		if v := int(d.(float64)); v < 0 || v > 200 {
			t.Errorf("draw %d outside [0,200]", v)
		}
	}
	for _, q := range []string{
		"/v1/sample?input=-1", "/v1/sample?input=201", "/v1/sample?count=0",
		fmt.Sprintf("/v1/sample?count=%d", maxSampleCount+1), "/v1/sample?level=0",
	} {
		rec, _ := get(t, mux, q)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s status %d, want 400", q, rec.Code)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	_, _ = get(t, mux, "/v1/result?level=1")
	rec, body := get(t, mux, "/v1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	srv := body["server"].(map[string]interface{})
	if srv["epoch"].(float64) != 1 || srv["n"].(float64) != 200 {
		t.Errorf("server metrics = %v", srv)
	}
	routes := srv["routes"].(map[string]interface{})
	res := routes["/v1/result"].(map[string]interface{})
	if res["count"].(float64) < 1 {
		t.Errorf("/v1/result count = %v", res["count"])
	}
	eng := body["engine"].(map[string]interface{})
	plans := eng["plans"].(map[string]interface{})
	if plans["requests"].(float64) < 1 {
		t.Errorf("engine plan requests = %v", plans["requests"])
	}
}

// TestConcurrentServing is the -race stress test: 32 goroutines mix
// reads (/result, /mechanism, /metrics, /sample), engine-cached LP
// solves (/tailored), and epoch advances (POST /epoch). It asserts
// the release invariant — within one epoch every (epoch, level) pair
// maps to exactly one result, because all levels of an epoch come
// from a single cascade draw published atomically — and that the
// engine's coalescer collapsed the duplicate concurrent tailored
// solves into a single LP run (miss counter = 1).
func TestConcurrentServing(t *testing.T) {
	s, err := newServer(serverConfig{N: 120, City: "San Diego", FluRate: 0.1, Levels: "1/2,2/3,4/5", Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mux := s.handler()

	const workers = 32
	const perWorker = 40

	var mu sync.Mutex
	seen := make(map[[2]int]int) // (epoch, level) → result

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer done.Done()
			start.Wait()
			for k := 0; k < perWorker; k++ {
				switch k % 8 {
				case 0, 1, 2, 3: // result reads dominate, cycling levels
					lvl := 1 + (w+k)%3
					rec := httptest.NewRecorder()
					mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
						fmt.Sprintf("/v1/result?level=%d", lvl), nil))
					if rec.Code != http.StatusOK {
						t.Errorf("/v1/result status %d", rec.Code)
						return
					}
					var body struct {
						Epoch  int `json:"epoch"`
						Level  int `json:"level"`
						Result int `json:"result"`
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
						t.Errorf("bad /result JSON: %v", err)
						return
					}
					key := [2]int{body.Epoch, body.Level}
					mu.Lock()
					if prev, ok := seen[key]; ok && prev != body.Result {
						t.Errorf("epoch %d level %d: saw results %d and %d (cascade draw torn)",
							body.Epoch, body.Level, prev, body.Result)
					}
					seen[key] = body.Result
					mu.Unlock()
				case 4: // identical tailored solve from every goroutine
					rec := httptest.NewRecorder()
					mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
						"/v1/tailored?loss=absolute&n=8&level=1", nil))
					if rec.Code != http.StatusOK {
						t.Errorf("/v1/tailored status %d: %s", rec.Code, rec.Body.String())
						return
					}
				case 5: // pooled sampler draws
					rec := httptest.NewRecorder()
					mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
						"/v1/sample?level=2&input=60&count=8", nil))
					if rec.Code != http.StatusOK {
						t.Errorf("/v1/sample status %d", rec.Code)
						return
					}
				case 6: // metrics reads race the counters
					rec := httptest.NewRecorder()
					mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
					if rec.Code != http.StatusOK {
						t.Errorf("/v1/metrics status %d", rec.Code)
						return
					}
				case 7: // occasional epoch advance
					if w%4 == 0 {
						rec := httptest.NewRecorder()
						mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/epoch", nil))
						if rec.Code != http.StatusOK {
							t.Errorf("/v1/epoch status %d", rec.Code)
							return
						}
					}
				}
			}
		}(w)
	}
	start.Done()
	done.Wait()

	m := s.eng.Metrics()
	if m.Tailored.Cache.Misses != 1 {
		t.Errorf("tailored LP misses = %d, want 1 (coalescer must collapse %d concurrent identical solves)",
			m.Tailored.Cache.Misses, workers)
	}
	if m.Tailored.Requests != workers*perWorker/8 {
		t.Errorf("tailored requests = %d, want %d", m.Tailored.Requests, workers*perWorker/8)
	}
	if m.SamplerDraws == 0 {
		t.Error("no sampler draws recorded")
	}
	if len(seen) == 0 {
		t.Fatal("no results observed")
	}
}
