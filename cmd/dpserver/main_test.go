package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func newTestServer(t *testing.T) *serverState {
	t.Helper()
	s, err := newServer(200, "San Diego", 0.1, "1/2,2/3", 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, mux http.Handler, path string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	var body map[string]interface{}
	if rec.Header().Get("Content-Type") == "application/json" {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec, body
}

func TestNewServerValidation(t *testing.T) {
	if _, err := newServer(100, "X", 0.1, "zzz", 1); err == nil {
		t.Error("bad levels accepted")
	}
	if _, err := newServer(100, "X", 0.1, "1/2,1/4", 1); err == nil {
		t.Error("decreasing levels accepted")
	}
}

func TestRootAndLevels(t *testing.T) {
	s := newTestServer(t)
	mux := s.mux()
	rec, body := get(t, mux, "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("root status %d", rec.Code)
	}
	if body["levels"].(float64) != 2 {
		t.Errorf("levels = %v", body["levels"])
	}
	rec, _ = get(t, mux, "/nope")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status %d", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/levels", nil)
	lrec := httptest.NewRecorder()
	mux.ServeHTTP(lrec, req)
	var levels []map[string]interface{}
	if err := json.Unmarshal(lrec.Body.Bytes(), &levels); err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 || levels[0]["alpha"] != "1/2" || levels[1]["alpha"] != "2/3" {
		t.Errorf("levels = %v", levels)
	}
}

func TestResultEndpoint(t *testing.T) {
	s := newTestServer(t)
	mux := s.mux()
	rec, body := get(t, mux, "/result?level=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if body["alpha"] != "1/2" {
		t.Errorf("alpha = %v", body["alpha"])
	}
	result := int(body["result"].(float64))
	if result < 0 || result > 200 {
		t.Errorf("result %d outside [0,200]", result)
	}
	// Default level is 1.
	_, body = get(t, mux, "/result")
	if body["level"].(float64) != 1 {
		t.Errorf("default level = %v", body["level"])
	}
	// Same epoch → same result (correlated release is cached per epoch).
	_, body2 := get(t, mux, "/result?level=1")
	if body2["result"] != body["result"] {
		t.Error("result changed within an epoch")
	}
	// Bad levels.
	rec, _ = get(t, mux, "/result?level=0")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("level=0 status %d", rec.Code)
	}
	rec, _ = get(t, mux, "/result?level=99")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("level=99 status %d", rec.Code)
	}
	rec, _ = get(t, mux, "/result?level=x")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("level=x status %d", rec.Code)
	}
}

func TestEpochEndpoint(t *testing.T) {
	s := newTestServer(t)
	mux := s.mux()
	_, before := get(t, mux, "/result?level=1")
	req := httptest.NewRequest(http.MethodPost, "/epoch", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("epoch status %d", rec.Code)
	}
	var body map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["epoch"] != 2 {
		t.Errorf("epoch = %d, want 2", body["epoch"])
	}
	_, after := get(t, mux, "/result?level=1")
	if after["epoch"].(float64) != 2 {
		t.Errorf("result epoch = %v", after["epoch"])
	}
	_ = before // values may coincide by chance; epoch must advance

	// GET /epoch is rejected.
	gRec, _ := get(t, mux, "/epoch")
	if gRec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /epoch status %d", gRec.Code)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t)
	rec := httptest.NewRecorder()
	s.mux().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

func TestMechanismEndpoint(t *testing.T) {
	s := newTestServer(t)
	mux := s.mux()
	req := httptest.NewRequest(http.MethodGet, "/mechanism?level=1", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var body struct {
		N    int        `json:"n"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.N != 200 || len(body.Rows) != 201 {
		t.Errorf("mechanism shape n=%d rows=%d", body.N, len(body.Rows))
	}
	// Bad levels rejected.
	for _, q := range []string{"/mechanism?level=0", "/mechanism?level=99", "/mechanism?level=x"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, q, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s status %d", q, rec.Code)
		}
	}
}
