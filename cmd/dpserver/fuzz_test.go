package main

import (
	"strings"
	"testing"
)

// FuzzParseLevels exercises the -levels flag parser: comma-split,
// rational.Parse per part, and the strictly-increasing-in-(0,1)
// validation. Invariants on accepted input: at least one level, every
// level strictly inside (0,1), strictly increasing, and the
// canonical re-rendering round-trips through the parser.
func FuzzParseLevels(f *testing.F) {
	for _, seed := range []string{
		"1/2,2/3,4/5", "1/2", "0.1,0.5,0.9", " 1/3 , 1/2 ", "2/4,3/4",
		"", ",", "1/2,", "2/3,1/2", "1/2,1/2", "0,1/2", "1,1/2",
		"-1/2", "3/2", "zzz", "1/0", "1e10,1/2", "0.9999999999,1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		alphas, err := parseLevels(s)
		if err != nil {
			if alphas != nil {
				t.Fatalf("error %v with non-nil result", err)
			}
			return
		}
		if len(alphas) == 0 {
			t.Fatal("accepted input produced no levels")
		}
		parts := make([]string, len(alphas))
		for i, a := range alphas {
			if a.Sign() <= 0 || a.Num().Cmp(a.Denom()) >= 0 {
				t.Fatalf("level %d = %s outside (0,1)", i+1, a.RatString())
			}
			if i > 0 && a.Cmp(alphas[i-1]) <= 0 {
				t.Fatalf("levels not strictly increasing: %s then %s",
					alphas[i-1].RatString(), a.RatString())
			}
			parts[i] = a.RatString()
		}
		// Canonical form must round-trip to the same levels.
		again, err := parseLevels(strings.Join(parts, ","))
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", strings.Join(parts, ","), err)
		}
		for i := range alphas {
			if again[i].Cmp(alphas[i]) != 0 {
				t.Fatalf("round-trip changed level %d: %s → %s",
					i+1, alphas[i].RatString(), again[i].RatString())
			}
		}
	})
}
