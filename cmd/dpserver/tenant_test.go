// Tests for the multi-tenant surface: lifecycle, per-tenant release /
// epoch / sample / accounting / tailored, the budget refusal path,
// warm-boot against the artifact store, and concurrent multi-tenant
// isolation under the race detector.

package main

import (
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/rational"
)

// postJSON posts a JSON body and decodes the JSON response.
func postJSON(t *testing.T, mux http.Handler, path, body string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	var out map[string]interface{}
	if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", path, err, rec.Body.String())
		}
	}
	return rec, out
}

func mustRegister(t *testing.T, mux http.Handler, spec string) {
	t.Helper()
	rec, _ := postJSON(t, mux, "/v1/tenants", spec)
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestTenantLifecycle(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()

	// Empty registry lists empty.
	_, body := get(t, mux, "/v1/tenants")
	if n := len(body["tenants"].([]interface{})); n != 0 {
		t.Fatalf("fresh server has %d tenants", n)
	}

	rec, body := postJSON(t, mux, "/v1/tenants",
		`{"id":"acme","n":12,"truth":5,"levels":["1/4","1/2"],"loss":"squared","seed":7}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("register: %d: %s", rec.Code, rec.Body.String())
	}
	if body["id"] != "acme" || body["epoch"].(float64) != 1 || body["loss"] != "squared" {
		t.Errorf("summary = %v", body)
	}
	if _, hasTruth := body["truth"]; hasTruth {
		t.Error("tenant summary leaked the truth")
	}

	// Duplicate id conflicts.
	rec, _ = postJSON(t, mux, "/v1/tenants", `{"id":"acme","n":12,"truth":5,"levels":["1/4","1/2"]}`)
	if rec.Code != http.StatusConflict {
		t.Errorf("duplicate register: %d, want 409", rec.Code)
	}

	// Invalid specs are 400 with the envelope.
	for _, bad := range []string{
		`{`,
		`{"id":"x","n":12,"levels":["1/2"]}`, // no truth
		`{"id":"x","n":12,"truth":5}`,        // no levels
		`{"id":"x","n":12,"truth":5,"levels":["3/2"]}`,  // level outside (0,1)
		`{"id":"X!","n":12,"truth":5,"levels":["1/2"]}`, // bad id
		`{"id":"x","n":0,"truth":0,"levels":["1/2"]}`,   // bad n
		`{"id":"x","n":12,"truth":44,"levels":["1/2"]}`, // truth outside domain
		`{"id":"x","n":12,"truth":5,"levels":["1/2"],"loss":"nope"}`,
		`{"id":"x","n":12,"truth":5,"levels":["1/2"],"min_alpha":"zzz"}`,
		`{"id":"x","n":12,"truth":5,"levels":["1/2"],"bogus_field":1}`,
	} {
		rec, _ := postJSON(t, mux, "/v1/tenants", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400", bad, rec.Code)
		}
	}

	// Describe includes accounting.
	_, body = get(t, mux, "/v1/tenants/acme")
	acc := body["accounting"].(map[string]interface{})
	if acc["epochs"].(float64) != 1 || acc["spent_alpha"] != "1/4" {
		t.Errorf("accounting = %v", acc)
	}

	// Unknown tenant is 404 everywhere on the tree.
	for _, path := range []string{
		"/v1/tenants/ghost", "/v1/tenants/ghost/release", "/v1/tenants/ghost/accounting",
	} {
		rec, _ := get(t, mux, path)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, rec.Code)
		}
	}

	// Delete, then the id is gone and re-registrable.
	req := httptest.NewRequest(http.MethodDelete, "/v1/tenants/acme", nil)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodDelete, "/v1/tenants/acme", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("second delete: %d, want 404", rec.Code)
	}
	mustRegister(t, mux, `{"id":"acme","n":4,"truth":1,"levels":["1/2"]}`)
}

func TestTenantMethodDispatch(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	mustRegister(t, mux, `{"id":"t1","n":8,"truth":2,"levels":["1/2"]}`)
	for _, tc := range []struct{ method, path, allow string }{
		{http.MethodPut, "/v1/tenants", "GET, POST"},
		{http.MethodPost, "/v1/tenants/t1", "GET, DELETE"},
		{http.MethodPost, "/v1/tenants/t1/release", http.MethodGet},
		{http.MethodGet, "/v1/tenants/t1/epoch", http.MethodPost},
		{http.MethodDelete, "/v1/tenants/t1/accounting", http.MethodGet},
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, rec.Code)
			continue
		}
		if allow := rec.Header().Get("Allow"); allow != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, allow, tc.allow)
		}
		var env errorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "method_not_allowed" {
			t.Errorf("%s %s: not the typed 405 envelope: %s", tc.method, tc.path, rec.Body.String())
		}
	}
}

func TestTenantReleaseEpochBudget(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	// Floor 1/8 with α₁ = 1/2: exactly three epoch draws fit
	// (registration itself is the first).
	mustRegister(t, mux,
		`{"id":"metered","n":10,"truth":4,"levels":["1/2","2/3"],"min_alpha":"1/8","seed":3}`)

	// Release at both levels; results in the tenant's domain; stable
	// within an epoch.
	for lvl := 1; lvl <= 2; lvl++ {
		rec, body := get(t, mux, fmt.Sprintf("/v1/tenants/metered/release?level=%d", lvl))
		if rec.Code != http.StatusOK {
			t.Fatalf("release level %d: %d: %s", lvl, rec.Code, rec.Body.String())
		}
		res := int(body["result"].(float64))
		if res < 0 || res > 10 {
			t.Errorf("level %d result %d outside [0,10]", lvl, res)
		}
		_, again := get(t, mux, fmt.Sprintf("/v1/tenants/metered/release?level=%d", lvl))
		if again["result"] != body["result"] || again["epoch"].(float64) != 1 {
			t.Errorf("level %d result changed within the epoch", lvl)
		}
	}
	rec, _ := get(t, mux, "/v1/tenants/metered/release?level=3")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("out-of-range level: %d, want 400", rec.Code)
	}

	// Two more draws fit; each response reports the updated spend.
	for i, wantSpent := range []string{"1/4", "1/8"} {
		rec, body := postJSON(t, mux, "/v1/tenants/metered/epoch", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("epoch draw %d: %d: %s", i+2, rec.Code, rec.Body.String())
		}
		acc := body["accounting"].(map[string]interface{})
		if acc["spent_alpha"] != wantSpent {
			t.Errorf("draw %d spent = %v, want %s", i+2, acc["spent_alpha"], wantSpent)
		}
	}
	// The budget now refuses.
	rec, _ = postJSON(t, mux, "/v1/tenants/metered/epoch", "")
	if rec.Code != http.StatusForbidden {
		t.Fatalf("over-budget epoch: %d, want 403 (%s)", rec.Code, rec.Body.String())
	}
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error.Code != "budget_exhausted" {
		t.Errorf("over-budget code = %v %q", err, env.Error.Code)
	}
	// Accounting is unchanged by the refusal and flags the stop.
	_, body := get(t, mux, "/v1/tenants/metered/accounting")
	if body["spent_alpha"] != "1/8" || body["budget_alpha"] != "1/8" ||
		body["epochs"].(float64) != 3 || body["next_draw_allowed"] != false {
		t.Errorf("post-refusal accounting = %v", body)
	}
	// Released epochs keep serving.
	rec, _ = get(t, mux, "/v1/tenants/metered/release")
	if rec.Code != http.StatusOK {
		t.Errorf("release after budget stop: %d", rec.Code)
	}
}

func TestTenantSampleEndpoint(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	mustRegister(t, mux, `{"id":"sampler","n":6,"truth":3,"levels":["1/3","1/2"],"seed":9}`)
	rec, body := get(t, mux, "/v1/tenants/sampler/sample?level=2&input=3&count=40")
	if rec.Code != http.StatusOK {
		t.Fatalf("sample: %d: %s", rec.Code, rec.Body.String())
	}
	if body["alpha"] != "1/2" {
		t.Errorf("alpha = %v", body["alpha"])
	}
	draws := body["draws"].([]interface{})
	if len(draws) != 40 {
		t.Fatalf("draws = %d", len(draws))
	}
	for _, d := range draws {
		if v := int(d.(float64)); v < 0 || v > 6 {
			t.Errorf("draw %d outside the tenant's domain [0,6]", v)
		}
	}
	for _, q := range []string{
		"/v1/tenants/sampler/sample?input=7",
		"/v1/tenants/sampler/sample?input=-1",
		"/v1/tenants/sampler/sample?count=0",
		fmt.Sprintf("/v1/tenants/sampler/sample?count=%d", maxSampleCount+1),
		"/v1/tenants/sampler/sample?level=3",
	} {
		rec, _ := get(t, mux, q)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, rec.Code)
		}
	}
}

func TestTenantTailoredEndpoint(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	mustRegister(t, mux,
		`{"id":"squared","n":6,"truth":2,"levels":["1/3"],"loss":"squared","side":"1-4"}`)
	rec, body := get(t, mux, "/v1/tenants/squared/tailored?level=1&mech=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("tailored: %d: %s", rec.Code, rec.Body.String())
	}
	want, err := consumer.OptimalMechanism(
		&consumer.Consumer{Loss: loss.Squared{}, Side: consumer.Interval(1, 4)},
		6, rational.MustParse("1/3"))
	if err != nil {
		t.Fatal(err)
	}
	if body["minimax_loss"] != want.Loss.RatString() {
		t.Errorf("minimax_loss = %v, want %s (tenant loss/side not honored)",
			body["minimax_loss"], want.Loss.RatString())
	}
	if body["mechanism"] == nil {
		t.Error("mech=1 did not include the mechanism")
	}

	// A tenant beyond the LP cap is refused cleanly.
	mustRegister(t, mux, `{"id":"big","n":100,"truth":50,"levels":["1/2"]}`)
	rec, _ = get(t, mux, "/v1/tenants/big/tailored")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized tailored: %d, want 400", rec.Code)
	}
}

// TestServerWarmBootZeroSolves is the serving-layer half of the
// warm-boot acceptance criterion: boot a server with a store dir and
// a tenant config, drive LP-backed routes, restart against the same
// directory, re-drive, and assert the second process reports
// "solves": 0 in its engine metrics.
func TestServerWarmBootZeroSolves(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(cfgPath, []byte(
		`{"tenants":[{"id":"acme","n":10,"truth":4,"levels":["1/3","1/2"],"loss":"squared","seed":5}]}`,
	), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := serverConfig{
		N: 60, City: "San Diego", FluRate: 0.1, Levels: "1/2,2/3", Seed: 42,
		StoreDir: filepath.Join(dir, "store"), TenantsConfig: cfgPath,
	}
	drive := func(s *server) {
		mux := s.handler()
		for _, path := range []string{
			"/v1/tailored?loss=absolute&n=8&level=1",
			"/v1/tenants/acme/tailored?level=2",
			"/v1/tenants/acme/release?level=1",
			"/v1/tenants/acme/sample?level=1&input=4&count=8",
		} {
			rec, _ := get(t, mux, path)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s: %d: %s", path, rec.Code, rec.Body.String())
			}
		}
	}

	s1, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(s1)
	if m := s1.eng.Metrics(); m.LP.Solves == 0 {
		t.Fatal("cold server did no LP solves — premise broken")
	}

	s2, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(s2)
	m := s2.eng.Metrics()
	if m.LP.Solves != 0 {
		t.Errorf("warm-booted server did %d LP solves, want 0", m.LP.Solves)
	}
	if hits := m.Tailored.StoreHits; hits == 0 {
		t.Error("warm boot never hit the tailored store")
	}
	// And the JSON surface really renders "solves":0 — the exact string
	// the ops smoke test (scripts/check.sh) greps for.
	rec, _ := get(t, s2.handler(), "/v1/metrics")
	if !strings.Contains(rec.Body.String(), `"solves":0`) {
		t.Error(`/v1/metrics does not contain "solves":0 after warm boot`)
	}
}

// TestTenantIsolationConcurrentHTTP is the isolation acceptance test:
// three tenants with different domains and ladders served
// concurrently (run under -race in CI) through a runtime cache capped
// BELOW the tenant count, so runtimes are evicted and rebuilt across
// tenants mid-flight. Afterwards each tenant's accounting must equal
// its own α₁^epochs exactly and every observed draw must lie in its
// own domain — any cross-tenant leakage of plans, samplers, PRNGs, or
// accounting shows up in one of those two invariants.
func TestTenantIsolationConcurrentHTTP(t *testing.T) {
	s, err := newServer(serverConfig{
		N: 60, City: "San Diego", FluRate: 0.1, Levels: "1/2", Seed: 1,
		MaxTenantRuntimes: 2, // 3 tenants → forced cross-tenant eviction
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := s.handler()
	tenants := []struct {
		id     string
		n      int
		alpha1 string
		spec   string
	}{
		{"small", 4, "1/3", `{"id":"small","n":4,"truth":2,"levels":["1/3","1/2"],"seed":1}`},
		{"wide", 30, "1/5", `{"id":"wide","n":30,"truth":11,"levels":["1/5","2/5","3/5"],"seed":2}`},
		{"single", 9, "2/5", `{"id":"single","n":9,"truth":7,"levels":["2/5"],"seed":3}`},
	}
	for _, tn := range tenants {
		mustRegister(t, mux, tn.spec)
	}

	const epochsPerTenant = 12
	const readsPerTenant = 60
	var wg sync.WaitGroup
	for _, tn := range tenants {
		tn := tn
		wg.Add(2)
		go func() { // writer: epoch advances
			defer wg.Done()
			for i := 0; i < epochsPerTenant; i++ {
				rec, _ := postJSON(t, mux, "/v1/tenants/"+tn.id+"/epoch", "")
				if rec.Code != http.StatusOK {
					t.Errorf("%s epoch: %d: %s", tn.id, rec.Code, rec.Body.String())
					return
				}
			}
		}()
		go func() { // reader: releases and samples stay in-domain
			defer wg.Done()
			for i := 0; i < readsPerTenant; i++ {
				rec, body := get(t, mux, "/v1/tenants/"+tn.id+"/release")
				if rec.Code != http.StatusOK {
					t.Errorf("%s release: %d", tn.id, rec.Code)
					return
				}
				if res := int(body["result"].(float64)); res < 0 || res > tn.n {
					t.Errorf("%s: release %d outside [0,%d]", tn.id, res, tn.n)
				}
				rec, body = get(t, mux, "/v1/tenants/"+tn.id+"/sample?count=4")
				if rec.Code != http.StatusOK {
					t.Errorf("%s sample: %d", tn.id, rec.Code)
					return
				}
				for _, d := range body["draws"].([]interface{}) {
					if v := int(d.(float64)); v < 0 || v > tn.n {
						t.Errorf("%s: draw %d outside [0,%d] (cross-tenant sampler?)", tn.id, v, tn.n)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Exact per-tenant accounting: registration + epochsPerTenant
	// advances, each spending that tenant's own α₁.
	for _, tn := range tenants {
		_, body := get(t, mux, "/v1/tenants/"+tn.id+"/accounting")
		if got := body["epochs"].(float64); got != epochsPerTenant+1 {
			t.Errorf("%s: epochs = %v, want %d", tn.id, got, epochsPerTenant+1)
		}
		a1 := rational.MustParse(tn.alpha1)
		want := new(big.Rat).SetInt64(1)
		for i := 0; i < epochsPerTenant+1; i++ {
			want.Mul(want, a1)
		}
		if body["spent_alpha"] != want.RatString() {
			t.Errorf("%s: spent = %v, want %s (accounting cross-contamination?)",
				tn.id, body["spent_alpha"], want.RatString())
		}
	}
	// The cap was honored and forced real cross-tenant evictions.
	if got := s.runtimes.len(); got > 2 {
		t.Errorf("runtime cache holds %d entries, cap 2", got)
	}
	if ev := s.runtimes.evictions.Load(); ev == 0 {
		t.Error("no runtime evictions despite cap < tenant count")
	}
}
