// Tests for the /v1 API contract: the typed error envelope, status
// code mapping, retired legacy aliases (410), readiness, and the
// cancellation/load-shedding behavior of the LP-backed routes.

package main

import (
	"context"
	"encoding/json"
	"errors"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/engine"
	"minimaxdp/internal/loss"
)

// decodeEnvelope asserts the response carries the uniform error
// envelope and returns its code.
func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("response is not an error envelope: %v\n%s", err, rec.Body.String())
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", rec.Body.String())
	}
	return env.Error.Code
}

// TestV1ErrorEnvelopes drives every /v1 error path and asserts both
// the HTTP status and the machine-readable code.
func TestV1ErrorEnvelopes(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	cases := []struct {
		method string
		path   string
		status int
		code   string
	}{
		{http.MethodGet, "/v1/result?level=0", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/result?level=99", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/result?level=x", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/mechanism?level=0", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/tailored?loss=nope&n=4", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/tailored?n=0", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/tailored?n=9999", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/tailored?alpha=zzz&n=4", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/tailored?side=9-2&n=4", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/tailored?loss=deadband&width=x&n=4", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/sample?count=0", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/sample?input=-1", http.StatusBadRequest, "invalid_argument"},
		{http.MethodGet, "/v1/nonexistent", http.StatusNotFound, "not_found"},
		{http.MethodGet, "/v1/epoch", http.StatusMethodNotAllowed, "method_not_allowed"},
		{http.MethodPost, "/v1/result", http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, nil))
		if rec.Code != tc.status {
			t.Errorf("%s %s: status %d, want %d (%s)", tc.method, tc.path, rec.Code, tc.status, rec.Body.String())
			continue
		}
		if code := decodeEnvelope(t, rec); code != tc.code {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, code, tc.code)
		}
	}
}

// TestV1RoutesServe sanity-checks that every /v1 success path works
// and that the versioned responses carry no deprecation marker.
func TestV1RoutesServe(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	for _, path := range []string{
		"/v1/result?level=1",
		"/v1/levels",
		"/v1/mechanism?level=1",
		"/v1/tailored?loss=absolute&n=6&level=1",
		"/v1/sample?level=1&input=3&count=4",
		"/v1/metrics",
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status %d: %s", path, rec.Code, rec.Body.String())
		}
		if dep := rec.Header().Get("Deprecation"); dep != "" {
			t.Errorf("%s: unexpected Deprecation header %q on versioned route", path, dep)
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/epoch", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("POST /v1/epoch: status %d", rec.Code)
	}
}

// TestLegacyAliasesGone: the retired unversioned paths answer 410
// with the typed envelope and a Link header naming the /v1 successor
// — a stale client's failure message says exactly where to migrate.
func TestLegacyAliasesGone(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	for legacy, successor := range map[string]string{
		"/result?level=1": "/v1/result",
		"/levels":         "/v1/levels",
		"/epoch":          "/v1/epoch",
		"/mechanism":      "/v1/mechanism",
		"/tailored":       "/v1/tailored",
		"/sample":         "/v1/sample",
		"/metrics":        "/v1/metrics",
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, legacy, nil))
		if rec.Code != http.StatusGone {
			t.Errorf("%s: status %d, want 410", legacy, rec.Code)
			continue
		}
		if code := decodeEnvelope(t, rec); code != "gone" {
			t.Errorf("%s: code %q, want gone", legacy, code)
		}
		if link := rec.Header().Get("Link"); !strings.Contains(link, successor) ||
			!strings.Contains(link, "successor-version") {
			t.Errorf("%s: Link header = %q, want successor %s", legacy, link, successor)
		}
	}
}

// TestTailoredClientDisconnect: a request whose context is already
// canceled (the client hung up) gets 503/canceled, not a solve.
func TestTailoredClientDisconnect(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/v1/tailored?loss=absolute&n=8&level=1", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", rec.Code, rec.Body.String())
	}
	if code := decodeEnvelope(t, rec); code != "canceled" {
		t.Errorf("code %q, want canceled", code)
	}
	if size := s.eng.Metrics().Tailored.Cache.Size; size != 0 {
		t.Errorf("canceled request cached an artifact: size = %d", size)
	}
}

// TestTailoredSolveTimeout: a server-side solve timeout that expires
// maps to 504/deadline_exceeded.
func TestTailoredSolveTimeout(t *testing.T) {
	s, err := newServer(serverConfig{
		N: 200, City: "San Diego", FluRate: 0.1, Levels: "1/2,2/3", Seed: 42,
		SolveTimeout: time.Nanosecond, // expires before the solve can start
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := s.handler()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/tailored?loss=absolute&n=8&level=1", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
	if code := decodeEnvelope(t, rec); code != "deadline_exceeded" {
		t.Errorf("code %q, want deadline_exceeded", code)
	}
}

// TestTailoredShedsUnderLoad: with a single solve slot occupied by a
// long-running solve, a /v1/tailored request for a different key is
// rejected fast with 429/shed and the shed shows up in /v1/metrics.
func TestTailoredShedsUnderLoad(t *testing.T) {
	solveStarted := make(chan struct{}, 1)
	s, err := newServer(serverConfig{
		N: 200, City: "San Diego", FluRate: 0.1, Levels: "1/2,2/3", Seed: 42,
		MaxInFlightSolves: 1,
		Trace: func(ev engine.TraceEvent) {
			if ev.Kind == engine.TraceSolveStart && ev.Artifact == "tailored" {
				select {
				case solveStarted <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := s.handler()

	// Occupy the slot with a large solve directly on the engine; abort
	// it at the end of the test (the pivot checkpoint makes that fast).
	occCtx, occCancel := context.WithCancel(context.Background())
	occDone := make(chan error, 1)
	go func() {
		_, err := s.eng.TailoredCtx(occCtx, &consumer.Consumer{Loss: loss.Absolute{}}, 14, big.NewRat(1, 2))
		occDone <- err
	}()
	select {
	case <-solveStarted:
	case <-time.After(30 * time.Second):
		occCancel()
		t.Fatal("occupying solve never started")
	}
	defer func() {
		occCancel()
		if err := <-occDone; !errors.Is(err, context.Canceled) {
			t.Errorf("occupying solve err = %v, want context.Canceled", err)
		}
	}()

	begin := time.Now()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/tailored?loss=squared&n=6&level=2", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", rec.Code, rec.Body.String())
	}
	if code := decodeEnvelope(t, rec); code != "shed" {
		t.Errorf("code %q, want shed", code)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Errorf("shed response took %v, want fast-fail", elapsed)
	}

	// The shed is visible through /v1/metrics.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	var body struct {
		Engine struct {
			Tailored struct {
				Shed uint64 `json:"shed"`
			} `json:"tailored"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Engine.Tailored.Shed != 1 {
		t.Errorf("metrics shed = %d, want 1", body.Engine.Tailored.Shed)
	}
}

// TestReadyzDrains: ready until the drain flag flips, 503 after.
func TestReadyzDrains(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Fatalf("readyz while serving: %d %q", rec.Code, rec.Body.String())
	}
	s.ready.Store(false)
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable || rec.Body.String() != "draining\n" {
		t.Errorf("readyz while draining: %d %q", rec.Code, rec.Body.String())
	}
}

// TestV1MetricsIncludesInFlight: the engine section exposes the
// in-flight solve gauge and per-artifact latency histograms.
func TestV1MetricsIncludesInFlight(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	// One real solve so the tailored histogram is non-empty.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/tailored?loss=absolute&n=6&level=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("tailored warmup: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	var body struct {
		Engine struct {
			InFlightSolves *int `json:"in_flight_solves"`
			Tailored       struct {
				ComputeLatency struct {
					Counts []uint64 `json:"counts"`
				} `json:"compute_latency"`
			} `json:"tailored"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Engine.InFlightSolves == nil {
		t.Error("metrics missing in_flight_solves gauge")
	}
	var total uint64
	for _, c := range body.Engine.Tailored.ComputeLatency.Counts {
		total += c
	}
	if total != 1 {
		t.Errorf("tailored latency histogram total = %d, want 1", total)
	}
}
