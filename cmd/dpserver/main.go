// Command dpserver publishes a count-query result at multiple privacy
// levels over HTTP — the paper's motivating "report on the Internet"
// scenario (Section 2.6) made concrete.
//
// On startup it generates a synthetic survey database, evaluates the
// flu count query, and prepares an Algorithm 1 release plan. Each
// request to /result?level=K returns the level-K released value for
// the *current epoch*; all levels within an epoch come from one
// correlated cascade draw, so colluding readers cannot cancel the
// noise (Lemma 4). POST /epoch advances to a fresh draw.
//
// Endpoints:
//
//	GET  /               service description (JSON)
//	GET  /result?level=K released result at privacy level K (1-based)
//	GET  /levels         the privacy levels and their α values
//	POST /epoch          advance to a new correlated release
//	GET  /healthz        liveness probe
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"minimaxdp/internal/database"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
	"minimaxdp/internal/sample"
)

// serverState holds the release plan and the current epoch's
// correlated results. All handler access is mutex-guarded.
type serverState struct {
	mu      sync.Mutex
	plan    *release.Plan
	rng     *rand.Rand
	truth   int
	epoch   int
	current []int
	alphas  []*big.Rat
	city    string
}

func main() {
	addr := flag.String("addr", ":8990", "listen address")
	n := flag.Int("n", 500, "synthetic population size")
	city := flag.String("city", "San Diego", "survey city")
	fluRate := flag.Float64("flurate", 0.08, "synthetic flu rate among adults")
	levelsStr := flag.String("levels", "1/2,2/3,4/5", "increasing privacy levels")
	seed := flag.Int64("seed", 1, "PRNG seed")
	flag.Parse()

	s, err := newServer(*n, *city, *fluRate, *levelsStr, *seed)
	if err != nil {
		log.Fatal("dpserver: ", err)
	}
	log.Printf("dpserver: listening on %s (levels %s)", *addr, *levelsStr)
	log.Fatal(http.ListenAndServe(*addr, s.mux()))
}

func newServer(n int, city string, fluRate float64, levelsStr string, seed int64) (*serverState, error) {
	rng := sample.NewRand(seed)
	db := database.Synthetic(n, city, fluRate, rng)
	q := database.FluQuery(city)
	truth := q.Eval(db)

	var alphas []*big.Rat
	for _, s := range strings.Split(levelsStr, ",") {
		a, err := rational.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("bad levels: %w", err)
		}
		alphas = append(alphas, a)
	}
	plan, err := release.NewPlan(n, alphas)
	if err != nil {
		return nil, err
	}
	st := &serverState{plan: plan, truth: truth, alphas: alphas, city: city, rng: rng}
	if err := st.advance(); err != nil {
		return nil, err
	}
	return st, nil
}

// mux wires the HTTP routes.
func (s *serverState) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleRoot)
	mux.HandleFunc("/result", s.handleResult)
	mux.HandleFunc("/levels", s.handleLevels)
	mux.HandleFunc("/epoch", s.handleEpoch)
	mux.HandleFunc("/mechanism", s.handleMechanism)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// advance draws a fresh correlated cascade for a new epoch. Caller
// must not hold the lock.
func (s *serverState) advance() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out, err := s.plan.Release(s.truth, s.rng)
	if err != nil {
		return err
	}
	s.current = out
	s.epoch++
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("dpserver: encode: %v", err)
	}
}

func (s *serverState) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"service": "minimaxdp multi-level count release (Algorithm 1)",
		"query":   fmt.Sprintf("adults in %s with flu", s.city),
		"levels":  len(s.alphas),
		"epoch":   s.epoch,
		"usage":   "/result?level=K (1 = least private), POST /epoch for a fresh draw",
	})
}

func (s *serverState) handleLevels(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	type level struct {
		Level int    `json:"level"`
		Alpha string `json:"alpha"`
	}
	out := make([]level, len(s.alphas))
	for i, a := range s.alphas {
		out[i] = level{Level: i + 1, Alpha: a.RatString()}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *serverState) handleResult(w http.ResponseWriter, r *http.Request) {
	lvlStr := r.URL.Query().Get("level")
	if lvlStr == "" {
		lvlStr = "1"
	}
	lvl, err := strconv.Atoi(lvlStr)
	if err != nil || lvl < 1 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "level must be a positive integer"})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if lvl > len(s.current) {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": fmt.Sprintf("level %d out of range 1..%d", lvl, len(s.current))})
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"epoch":  s.epoch,
		"level":  lvl,
		"alpha":  s.alphas[lvl-1].RatString(),
		"result": s.current[lvl-1],
	})
}

// handleMechanism serves the exact marginal mechanism of a level as
// JSON, so consumers can solve their optimal post-processing locally
// (the mechanism matrix is public knowledge; only the database is
// secret).
func (s *serverState) handleMechanism(w http.ResponseWriter, r *http.Request) {
	lvlStr := r.URL.Query().Get("level")
	if lvlStr == "" {
		lvlStr = "1"
	}
	lvl, err := strconv.Atoi(lvlStr)
	if err != nil || lvl < 1 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "level must be a positive integer"})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.plan.Marginal(lvl)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *serverState) handleEpoch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
		return
	}
	if err := s.advance(); err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	s.mu.Lock()
	epoch := s.epoch
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{"epoch": epoch})
}
