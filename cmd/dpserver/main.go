// Command dpserver publishes a count-query result at multiple privacy
// levels over HTTP — the paper's motivating "report on the Internet"
// scenario (Section 2.6) made concrete, served through the
// internal/engine compute-once layer.
//
// On startup it generates a synthetic survey database, evaluates the
// flu count query, and prepares an Algorithm 1 release plan via the
// engine's artifact cache. Each request to /result?level=K returns
// the level-K released value for the *current epoch*; all levels
// within an epoch come from one correlated cascade draw, so colluding
// readers cannot cancel the noise (Lemma 4). POST /epoch advances to
// a fresh draw. Handlers are lock-free: the epoch lives behind an
// atomic snapshot and exact artifacts come from the engine's caches.
//
// Endpoints:
//
//	GET  /               service description (JSON)
//	GET  /result?level=K released result at privacy level K (1-based)
//	GET  /levels         the privacy levels and their α values
//	POST /epoch          advance to a new correlated release
//	GET  /mechanism      exact marginal mechanism of a level (public)
//	GET  /tailored       engine-cached §2.5 tailored-optimum solve
//	GET  /sample         draws of the public mechanism at a claimed input
//	GET  /metrics        serving and engine-cache counters
//	GET  /healthz        liveness probe
//
// The process runs a configured http.Server (header/read/write
// timeouts) and drains connections gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", ":8990", "listen address")
	n := flag.Int("n", 500, "synthetic population size")
	city := flag.String("city", "San Diego", "survey city")
	fluRate := flag.Float64("flurate", 0.08, "synthetic flu rate among adults")
	levelsStr := flag.String("levels", "1/2,2/3,4/5", "increasing privacy levels")
	seed := flag.Int64("seed", 1, "PRNG seed")
	maxTailoredN := flag.Int("max-tailored-n", defaultMaxTailoredN,
		"largest domain size accepted by /tailored (LP cost grows as n⁴)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second,
		"how long to drain connections after SIGINT/SIGTERM")
	flag.Parse()

	s, err := newServer(*n, *city, *fluRate, *levelsStr, *seed)
	if err != nil {
		log.Fatal("dpserver: ", err)
	}
	s.logRequests = true
	if *maxTailoredN > 0 {
		s.maxTailoredN = *maxTailoredN
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("dpserver: listening on %s (levels %s)", *addr, *levelsStr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("dpserver: ", err)
		}
	case <-ctx.Done():
		stop()
		log.Printf("dpserver: shutdown signal received; draining for up to %s", *shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("dpserver: graceful shutdown incomplete: %v", err)
			if cerr := srv.Close(); cerr != nil {
				log.Printf("dpserver: close: %v", cerr)
			}
		}
	}
	log.Printf("dpserver: stopped")
}
