// Command dpserver publishes a count-query result at multiple privacy
// levels over HTTP — the paper's motivating "report on the Internet"
// scenario (Section 2.6) made concrete, served through the
// internal/engine compute-once layer.
//
// On startup it generates a synthetic survey database, evaluates the
// flu count query, and prepares an Algorithm 1 release plan via the
// engine's artifact cache. Each request to /v1/result?level=K returns
// the level-K released value for the *current epoch*; all levels
// within an epoch come from one correlated cascade draw, so colluding
// readers cannot cancel the noise (Lemma 4). POST /v1/epoch advances
// to a fresh draw. Handlers are lock-free: the epoch lives behind an
// atomic snapshot and exact artifacts come from the engine's caches.
//
// The versioned surface (see README "Serving & operations" for the
// full contract):
//
//	GET  /v1/result?level=K released result at privacy level K (1-based)
//	GET  /v1/levels         the privacy levels and their α values
//	POST /v1/epoch          advance to a new correlated release
//	GET  /v1/mechanism      exact marginal mechanism of a level (public)
//	GET  /v1/tailored       engine-cached §2.5 tailored-optimum solve
//	GET  /v1/sample         draws of the public mechanism at a claimed input
//	GET  /v1/metrics        serving, engine-cache, store, and tenant counters
//	GET  /healthz           liveness probe
//	GET  /readyz            readiness probe (503 while draining)
//
// The multi-tenant tree serves many isolated surveys from one
// process, each tenant with its own n, α-ladder, loss,
// side-information, epoch state, and exact privacy accounting
// (one epoch draw spends α₁ — Lemma 4 plus sequential composition —
// and a configured min_alpha floor refuses draws past the budget):
//
//	GET|POST   /v1/tenants                 list / register tenants
//	GET|DELETE /v1/tenants/{id}            describe / retire one tenant
//	GET  /v1/tenants/{id}/release?level=K  current-epoch release at level K
//	POST /v1/tenants/{id}/epoch            fresh correlated draw (budgeted)
//	GET  /v1/tenants/{id}/sample           public-mechanism draws
//	GET  /v1/tenants/{id}/accounting       exact cumulative spend
//	GET  /v1/tenants/{id}/tailored         tenant-consumer §2.5 solve
//
// With -store-dir set, every exact artifact the engine derives is
// persisted to a content-addressed disk store; restarting against the
// same directory (and -tenants-config) warm-boots the full surface
// with zero LP solves — "solves":0 in /v1/metrics.
//
// The legacy unversioned paths (/result, /tailored, ...) are retired:
// they return 410 Gone with the typed error envelope and a Link
// header naming the /v1 successor.
//
// LP-backed requests run under the request context: a client
// disconnect cancels the solve at its next pivot, -solve-timeout
// bounds any single solve (504 on expiry), and -max-inflight-solves
// sheds excess concurrent solves with a fast 429.
//
// The process runs a configured http.Server (header/read/write
// timeouts) and drains connections gracefully on SIGINT/SIGTERM,
// flipping /readyz to 503 for the duration of the drain.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"minimaxdp/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8990", "listen address (use :0 for an ephemeral port)")
	n := flag.Int("n", 500, "synthetic population size")
	city := flag.String("city", "San Diego", "survey city")
	fluRate := flag.Float64("flurate", 0.08, "synthetic flu rate among adults")
	levelsStr := flag.String("levels", "1/2,2/3,4/5", "increasing privacy levels")
	seed := flag.Int64("seed", 1, "PRNG seed")
	maxTailoredN := flag.Int("max-tailored-n", defaultMaxTailoredN,
		"largest domain size accepted by /v1/tailored (cold LP solves grow steeply: ~0.15s at n=16, ~20s at n=24, minutes at n=32)")
	solveTimeout := flag.Duration("solve-timeout", 15*time.Second,
		"server-side cap on one LP solve (0 disables; exceeding it returns 504)")
	maxInFlight := flag.Int("max-inflight-solves", 0,
		"bound on concurrent LP solves (0 = engine default, negative = unlimited; excess sheds with 429)")
	traceEngine := flag.Bool("trace-engine", false,
		"log engine span events (solve-start/solve-done/shed) to stderr")
	debugAddr := flag.String("debug-addr", "",
		"optional address for net/http/pprof (empty = disabled; keep it loopback-only)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second,
		"how long to drain connections after SIGINT/SIGTERM")
	storeDir := flag.String("store-dir", "",
		"directory for the disk-backed artifact store (empty = in-memory only; reuse across restarts for zero-solve warm boots)")
	tenantsConfig := flag.String("tenants-config", "",
		"JSON file of tenant specs to register at startup ({\"tenants\": [...]})")
	maxTenantRuntimes := flag.Int("max-tenant-runtimes", 0,
		"bound on cached compiled tenant runtimes across all tenants (0 = default; excess evicts LRU)")
	flag.Parse()

	cfg := serverConfig{
		N:                 *n,
		City:              *city,
		FluRate:           *fluRate,
		Levels:            *levelsStr,
		Seed:              *seed,
		MaxTailoredN:      *maxTailoredN,
		MaxInFlightSolves: *maxInFlight,
		SolveTimeout:      *solveTimeout,
		StoreDir:          *storeDir,
		TenantsConfig:     *tenantsConfig,
		MaxTenantRuntimes: *maxTenantRuntimes,
	}
	if *traceEngine {
		cfg.Trace = func(ev engine.TraceEvent) {
			switch ev.Kind {
			case engine.TraceSolveStart, engine.TraceShed:
				log.Printf("engine %s artifact=%s key=%q", ev.Kind, ev.Artifact, ev.Key)
			case engine.TraceSolveDone:
				log.Printf("engine %s artifact=%s key=%q dur=%s err=%v",
					ev.Kind, ev.Artifact, ev.Key, ev.Duration, ev.Err)
			}
		}
	}

	s, err := newServer(cfg)
	if err != nil {
		log.Fatal("dpserver: ", err)
	}
	s.logRequests = true

	// Listen before logging so -addr :0 reports the real port — the
	// CI smoke test and local scripting both parse this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal("dpserver: ", err)
	}

	if *debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("dpserver: pprof on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				log.Printf("dpserver: pprof server: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("dpserver: listening on %s (levels %s)", ln.Addr(), *levelsStr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal("dpserver: ", err)
		}
	case <-ctx.Done():
		stop()
		s.ready.Store(false) // /readyz → 503 while draining
		log.Printf("dpserver: shutdown signal received; draining for up to %s", *shutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("dpserver: graceful shutdown incomplete: %v", err)
			if cerr := srv.Close(); cerr != nil {
				log.Printf("dpserver: close: %v", cerr)
			}
		}
	}
	log.Printf("dpserver: stopped")
}
