// POST /v1/compare — the mechanism-design workbench route — and the
// shared consumer-spec codec it introduces. The codec is the single
// wire definition of "a consumer model": /v1/tailored reads it from
// GET query parameters and /v1/compare reads it from a JSON body, so
// the two surfaces parse names, widths, side intervals, and priors
// identically and cannot drift apart.
//
// A compare request fixes (n, α, consumer, baseline set) and returns
// the engine's cached optimality-gap scorecard: each baseline's loss
// as deployed, its loss after the consumer's optimal reaction, the
// consumer's tailored-optimal loss, and the gaps between them — all
// exact rational strings. Theorem 1 part 2 is directly observable in
// the response: for every minimax consumer the geometric row's gap is
// the string "0".

package main

import (
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"minimaxdp/internal/baseline"
	"minimaxdp/internal/consumer"
	"minimaxdp/internal/engine"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/rational"
)

// maxCompareBody bounds one POST /v1/compare body. Specs are a few
// hundred bytes; anything near the cap is a client bug.
const maxCompareBody = 1 << 16

// consumerSpec is the wire form of a consumer model, shared verbatim
// between the GET query surface and the POST body surface: every
// field holds the same string it would carry in a query parameter.
type consumerSpec struct {
	// Model selects the consumer family: "minimax" (default) or
	// "bayesian".
	Model string `json:"model,omitempty"`
	// Loss is a registry name or alias (loss.Names lists the
	// canonical forms); empty means absolute.
	Loss string `json:"loss,omitempty"`
	// Width is the deadband width parameter; families without a width
	// reject a non-empty value.
	Width string `json:"width,omitempty"`
	// Side is a "lo-hi" side-information interval. Minimax only.
	Side string `json:"side,omitempty"`
	// Prior is the Bayesian prior over {0..n} as rational strings
	// (comma-separated in query form); empty means uniform. Bayesian
	// only.
	Prior []string `json:"prior,omitempty"`
}

// consumerSpecFromQuery reads the shared spec out of a GET query.
func consumerSpecFromQuery(q url.Values) consumerSpec {
	sp := consumerSpec{
		Model: q.Get("model"),
		Loss:  q.Get("loss"),
		Width: q.Get("width"),
		Side:  q.Get("side"),
	}
	if p := q.Get("prior"); p != "" {
		sp.Prior = strings.Split(p, ",")
	}
	return sp
}

// build validates the spec into a consumer model on {0..n}. The loss
// function is returned alongside the model for response rendering
// (the Model interface deliberately hides it).
func (sp consumerSpec) build(n int) (consumer.Model, loss.Function, error) {
	lf, err := loss.ParseSpec(sp.Loss, sp.Width)
	if err != nil {
		return nil, nil, err
	}
	switch sp.Model {
	case "", "minimax":
		if len(sp.Prior) > 0 {
			return nil, nil, fmt.Errorf("prior applies only to model=bayesian")
		}
		side, err := parseSide(sp.Side)
		if err != nil {
			return nil, nil, err
		}
		return &consumer.Consumer{Loss: lf, Side: side}, lf, nil
	case "bayesian":
		if sp.Side != "" {
			return nil, nil, fmt.Errorf("side information applies only to model=minimax")
		}
		prior := consumer.UniformPrior(n)
		if len(sp.Prior) > 0 {
			prior = make([]*big.Rat, len(sp.Prior))
			for i, ps := range sp.Prior {
				prior[i], err = rational.Parse(ps)
				if err != nil {
					return nil, nil, fmt.Errorf("prior[%d]: %w", i, err)
				}
			}
		}
		return &consumer.Bayesian{Loss: lf, Prior: prior}, lf, nil
	default:
		return nil, nil, fmt.Errorf("unknown model %q (want minimax or bayesian)", sp.Model)
	}
}

// compareRequest is the POST /v1/compare body. Numeric privacy
// parameters are rational strings, as everywhere on this surface.
type compareRequest struct {
	// N is the domain bound {0..n}; 0 means the server default
	// (the survey n clipped to the LP cap).
	N int `json:"n,omitempty"`
	// Alpha is an explicit privacy level; when empty, Level picks
	// from the server's ladder (default 1).
	Alpha string `json:"alpha,omitempty"`
	Level int    `json:"level,omitempty"`
	// Consumer is the shared consumer spec (see consumerSpec).
	Consumer consumerSpec `json:"consumer"`
	// Baselines lists baseline mechanisms to score, e.g.
	// ["geometric", "staircase:3", "laplace"]; empty means the
	// default set (geometric, staircase, laplace).
	Baselines []string `json:"baselines,omitempty"`
}

// compareEntryWire is one scorecard row; every numeric field is an
// exact rational string.
type compareEntryWire struct {
	Baseline        string `json:"baseline"`
	Loss            string `json:"loss"`
	InteractionLoss string `json:"interaction_loss"`
	Gap             string `json:"gap"`
	BestAlpha       string `json:"best_alpha"`
}

// handleCompare serves POST /v1/compare through the engine's compare
// artifact class: a repeat request for a behaviorally equal spec
// (aliased α, permuted baseline set, explicit default width) is a
// cache hit, and the nested LP solves run under the same request
// context, solve timeout, and load-shedding bound as /v1/tailored.
func (s *server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCompareBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "bad compare body: %v", err)
		return
	}
	if dec.More() {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "bad compare body: trailing data")
		return
	}
	n := s.plan.N()
	if n > s.maxTailoredN {
		n = s.maxTailoredN
	}
	if req.N != 0 {
		if req.N < 1 {
			writeAPIError(w, http.StatusBadRequest, "invalid_argument", "n must be a positive integer")
			return
		}
		if req.N > s.maxTailoredN {
			writeAPIError(w, http.StatusBadRequest, "invalid_argument",
				"n %d exceeds the LP cap %d", req.N, s.maxTailoredN)
			return
		}
		n = req.N
	}
	levelStr := ""
	if req.Level != 0 {
		levelStr = strconv.Itoa(req.Level)
	}
	alpha, err := s.resolveAlpha(req.Alpha, levelStr)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return
	}
	model, _, err := req.Consumer.build(n)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return
	}
	specs := make([]baseline.Spec, 0, len(req.Baselines))
	for _, bs := range req.Baselines {
		spec, err := baseline.ParseSpec(bs)
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
			return
		}
		specs = append(specs, spec)
	}
	ctx, cancel := s.solveContext(r)
	defer cancel()
	cmp, err := s.eng.CompareCtx(ctx, engine.CompareSpec{
		N: n, Alpha: alpha, Model: model, Baselines: specs,
	})
	if err != nil {
		writeSolveError(w, err)
		return
	}
	entries := make([]compareEntryWire, len(cmp.Entries))
	for i, e := range cmp.Entries {
		entries[i] = compareEntryWire{
			Baseline:        e.Spec,
			Loss:            e.Loss.RatString(),
			InteractionLoss: e.InteractionLoss.RatString(),
			Gap:             e.Gap.RatString(),
			BestAlpha:       e.BestAlpha.RatString(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"n":             cmp.N,
		"alpha":         cmp.Alpha.RatString(),
		"model":         cmp.Model,
		"tailored_loss": cmp.TailoredLoss.RatString(),
		"baselines":     entries,
	})
}
