// HTTP-handler benchmarks for the sampling hot path; part of the
// BENCH_sample.json suite. These exercise handleSample directly —
// raw-query parsing, pooled draw buffer, append-built JSON — against
// a discarding ResponseWriter, so the number isolates the handler
// (the piece this repo controls) from kernel socket costs.
package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// discardWriter is a minimal ResponseWriter: headers are retained (the
// handler sets Content-Type), the body is dropped. Unlike
// httptest.ResponseRecorder it does not grow a body buffer, which
// would dominate the allocation profile being measured.
type discardWriter struct{ h http.Header }

func (d *discardWriter) Header() http.Header         { return d.h }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(int)             {}

func newBenchServer(b *testing.B) *server {
	b.Helper()
	s, err := newServer(serverConfig{N: 200, City: "San Diego", FluRate: 0.1, Levels: "1/2,2/3", Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchHandleSample(b *testing.B, target string) {
	s := newBenchServer(b)
	req := httptest.NewRequest(http.MethodGet, target, nil)
	w := &discardWriter{h: make(http.Header)}
	s.handleSample(w, req) // warm the buffer pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.handleSample(w, req)
	}
}

func BenchmarkHandleSample(b *testing.B) {
	b.Run("count=1", func(b *testing.B) {
		benchHandleSample(b, "/v1/sample?level=1&input=60")
	})
	b.Run("count=1024", func(b *testing.B) {
		benchHandleSample(b, "/v1/sample?level=1&input=60&count=1024")
	})
}
