// Server core: state, routing, instrumentation, and handlers.
// main.go owns flags, the http.Server, and the shutdown path.

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/database"
	"minimaxdp/internal/engine"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
	"minimaxdp/internal/sample"
	diskstore "minimaxdp/internal/store"
	"minimaxdp/internal/tenant"
)

// defaultMaxTailoredN caps the domain size accepted by /v1/tailored:
// the §2.5 LP has (n+1)²+1 variables and is meant here as an
// interactive demonstration, not a bulk workload. With the presolved
// float-guided revised simplex the cap sits at 32: measured uncached
// solve times on the dev box are ~3ms at n=8, ~0.15s at n=16, ~3s at
// n=20, ~20s at n=24 and ~3.6min at n=32 — the last being the most a
// single interactive request may reasonably pin a solver slot for
// (pair a larger cap with -solve-timeout). Solves beyond the cap
// return 422 rather than silently queueing for minutes.
const defaultMaxTailoredN = 32

// maxSampleCount caps one /v1/sample batch.
const maxSampleCount = 4096

// epochState is one epoch's correlated release: every level's result
// comes from a single Algorithm 1 cascade draw, so colluding readers
// cannot average away the noise (Lemma 4). The struct is immutable
// once published; handlers read it through an atomic pointer and
// never lock.
type epochState struct {
	epoch   int
	results []int
}

// routeStat accumulates per-route serving counters.
type routeStat struct {
	count  atomic.Uint64
	errors atomic.Uint64
	nanos  atomic.Uint64
}

// serverConfig collects everything newServer needs; main fills it
// from flags, tests construct it literally.
type serverConfig struct {
	N            int     // synthetic population size
	City         string  // survey city
	FluRate      float64 // synthetic flu rate among adults
	Levels       string  // increasing privacy levels, comma-separated
	Seed         int64   // PRNG seed
	MaxTailoredN int     // largest n accepted by /v1/tailored (0 = default)
	// MaxInFlightSolves bounds concurrent LP solves (engine semantics:
	// 0 = engine default, negative = unlimited).
	MaxInFlightSolves int
	// SolveTimeout caps one LP-backed request's solve time; exceeding
	// it returns 504. Zero disables the server-side deadline (client
	// disconnects still cancel).
	SolveTimeout time.Duration
	// Trace, when non-nil, receives the engine's span events.
	Trace engine.TraceFunc
	// StoreDir, when non-empty, roots the disk-backed artifact store:
	// every mechanism, transition, plan, tailored solution, and sampler
	// table the engine derives is persisted there, so a restart against
	// the same directory warm-boots with zero LP solves.
	StoreDir string
	// TenantsConfig, when non-empty, is a JSON file of tenant specs
	// ({"tenants": [...]}) registered at startup — the declarative
	// sibling of POST /v1/tenants.
	TenantsConfig string
	// MaxTenantRuntimes bounds the compiled-runtime LRU shared across
	// tenants (0 = default). Tenant identity and accounting are never
	// evicted; only the rebuildable plan+sampler state is.
	MaxTenantRuntimes int
}

// server wires the engine, the release plan, and the epoch state.
// Request handling is lock-free: the current epoch lives behind an
// atomic snapshot pointer, exact artifacts come from the engine's
// caches, and the only mutex guards the PRNG used by the rare epoch
// advance.
type server struct {
	eng          *engine.Engine
	plan         *release.Plan
	truth        int
	city         string
	alphas       []*big.Rat
	maxTailoredN int
	solveTimeout time.Duration
	logRequests  bool
	start        time.Time

	// Sampling hot path, precompiled at startup: the level-K sampler
	// and its rendered α string live at index K−1, so /v1/sample never
	// touches the engine's cache-lookup machinery or re-renders a
	// rational per request.
	levelSamplers []*engine.Sampler
	alphaStrs     []string

	// ready gates /readyz: true once serving, false when draining so
	// load balancers stop routing before in-flight requests finish.
	ready atomic.Bool

	mu  sync.Mutex // guards rng (sample.NewRand PRNGs are not goroutine-safe)
	rng *rand.Rand

	state  atomic.Pointer[epochState]
	routes map[string]*routeStat

	// Multi-tenant surface: identity + accounting in the registry,
	// rebuildable compiled state in the bounded runtime cache, exact
	// artifacts on disk (nil when -store-dir is unset).
	registry *tenant.Registry
	runtimes *runtimeCache
	store    *diskstore.Store
}

// parseLevels parses the -levels flag: comma-separated rationals that
// must be strictly increasing within (0,1). It owns the full
// validation so the fuzz target FuzzParseLevels can exercise parser
// and invariants together.
func parseLevels(s string) ([]*big.Rat, error) {
	one := rational.One()
	var out []*big.Rat
	for i, part := range strings.Split(s, ",") {
		a, err := rational.Parse(part)
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", i+1, err)
		}
		if a.Sign() <= 0 || a.Cmp(one) >= 0 {
			return nil, fmt.Errorf("level %d: %s outside (0,1)", i+1, a.RatString())
		}
		if i > 0 && a.Cmp(out[i-1]) <= 0 {
			return nil, fmt.Errorf("level %d: %s not greater than level %d (%s)",
				i+1, a.RatString(), i, out[i-1].RatString())
		}
		out = append(out, a)
	}
	return out, nil
}

// lossFromConfig resolves a stored (name, width) loss pair — the
// tenant-config form — through the loss registry. The integer width
// is a wire parameter of the deadband family only; a nonzero width on
// any other family is a spec error (loss.ParseSpec owns that rule;
// the old per-surface parser silently ignored it).
func lossFromConfig(name string, width int) (loss.Function, error) {
	ws := ""
	if width != 0 {
		ws = strconv.Itoa(width)
	} else if c, err := loss.CanonicalName(name); err == nil && c == "deadband" {
		ws = "0"
	}
	return loss.ParseSpec(name, ws)
}

// parseSide resolves a "lo-hi" side-information interval; empty means
// no side information (the full domain).
func parseSide(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	lo, hi, ok := strings.Cut(s, "-")
	if !ok {
		return nil, fmt.Errorf("side must be lo-hi, got %q", s)
	}
	l, err := strconv.Atoi(lo)
	if err != nil {
		return nil, fmt.Errorf("side lower bound %q: %w", lo, err)
	}
	h, err := strconv.Atoi(hi)
	if err != nil {
		return nil, fmt.Errorf("side upper bound %q: %w", hi, err)
	}
	if l < 0 || h < l {
		return nil, fmt.Errorf("side %q: need 0 ≤ lo ≤ hi", s)
	}
	return consumer.Interval(l, h), nil
}

func newServer(cfg serverConfig) (*server, error) {
	alphas, err := parseLevels(cfg.Levels)
	if err != nil {
		return nil, fmt.Errorf("bad levels: %w", err)
	}
	var artifacts *diskstore.Store
	if cfg.StoreDir != "" {
		artifacts, err = diskstore.Open(cfg.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("opening artifact store: %w", err)
		}
	}
	maxN := cfg.MaxTailoredN
	if maxN <= 0 {
		maxN = defaultMaxTailoredN
	}
	eng := engine.New(engine.Config{
		Seed:              cfg.Seed,
		MaxInFlightSolves: cfg.MaxInFlightSolves,
		// Keep the engine-side guard in lockstep with the HTTP-level
		// cap so a raised -max-tailored-n raises both.
		MaxLPDomainN: maxN,
		Trace:        cfg.Trace,
		Store:        artifacts,
	})
	rng := sample.NewRand(cfg.Seed)
	db := database.Synthetic(cfg.N, cfg.City, cfg.FluRate, rng)
	truth := database.FluQuery(cfg.City).Eval(db)
	plan, err := eng.ReleasePlan(cfg.N, alphas)
	if err != nil {
		return nil, err
	}
	samplers := make([]*engine.Sampler, len(alphas))
	alphaStrs := make([]string, len(alphas))
	for i, a := range alphas {
		samplers[i], err = eng.Sampler(context.Background(),
			engine.SamplerSpec{N: plan.N(), Alpha: a})
		if err != nil {
			return nil, fmt.Errorf("compiling level %d sampler: %w", i+1, err)
		}
		alphaStrs[i] = a.RatString()
	}
	s := &server{
		eng:           eng,
		plan:          plan,
		truth:         truth,
		city:          cfg.City,
		alphas:        alphas,
		maxTailoredN:  maxN,
		solveTimeout:  cfg.SolveTimeout,
		start:         time.Now(),
		rng:           rng,
		routes:        make(map[string]*routeStat),
		levelSamplers: samplers,
		alphaStrs:     alphaStrs,
		registry:      tenant.NewRegistry(),
		runtimes:      newRuntimeCache(cfg.MaxTenantRuntimes),
		store:         artifacts,
	}
	s.state.Store(&epochState{})
	if _, err := s.advance(); err != nil {
		return nil, err
	}
	if cfg.TenantsConfig != "" {
		if err := s.loadTenantsConfig(cfg.TenantsConfig); err != nil {
			return nil, err
		}
	}
	s.ready.Store(true)
	return s, nil
}

// loadTenantsConfig registers every tenant spec from a JSON config
// file. Registration failures are fatal at startup: a half-loaded
// tenant fleet is worse than a crash loop with a clear message.
func (s *server) loadTenantsConfig(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("tenants config: %w", err)
	}
	var file tenantConfigFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("tenants config %s: %w", path, err)
	}
	for i := range file.Tenants {
		if _, err := s.registerTenant(&file.Tenants[i]); err != nil {
			return fmt.Errorf("tenants config %s: %w", path, err)
		}
	}
	return nil
}

// advance draws a fresh correlated cascade and publishes it as the
// next epoch's snapshot.
func (s *server) advance() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out, err := s.plan.Release(s.truth, s.rng)
	if err != nil {
		return 0, err
	}
	next := &epochState{epoch: s.state.Load().epoch + 1, results: out}
	s.state.Store(next)
	return next.epoch, nil
}

// --- error envelope -------------------------------------------------------

// apiError is the uniform error payload of the /v1 surface: a stable
// machine-readable code plus a human-readable message, wrapped as
// {"error": {"code": ..., "message": ...}}.
//
// Codes and their statuses:
//
//	invalid_argument   400  a query parameter or tenant spec failed validation
//	budget_exhausted   403  tenant privacy budget refuses another epoch draw
//	not_found          404  unknown /v1 route or tenant id
//	method_not_allowed 405  wrong HTTP method for the route
//	conflict           409  tenant id already registered
//	gone               410  retired legacy unversioned path (Link points at /v1)
//	shed               429  solve rejected: in-flight solve bound hit
//	canceled           503  client went away before the solve finished
//	deadline_exceeded  504  solve exceeded the server's -solve-timeout
//	internal           500  unexpected server-side failure
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error apiError `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("dpserver: encode: %v", err)
	}
}

func writeAPIError(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	writeJSON(w, status, errorEnvelope{Error: apiError{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// writeSolveError maps an engine/context error from an LP-backed
// handler to its /v1 status: load shedding is retryable-after-backoff
// (429), a client that hung up gets 503 (nobody is listening, but
// proxies may log it), and a solve that outlived the server's own
// deadline is a gateway-style timeout (504). Anything else is a
// parameter the engine rejected (400).
func writeSolveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrSaturated):
		writeAPIError(w, http.StatusTooManyRequests, "shed", "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		writeAPIError(w, http.StatusGatewayTimeout, "deadline_exceeded",
			"solve exceeded the server's solve timeout")
	case errors.Is(err, context.Canceled):
		writeAPIError(w, http.StatusServiceUnavailable, "canceled",
			"request canceled before the solve finished")
	default:
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
	}
}

// --- routing --------------------------------------------------------------

// handler builds the instrumented route table: the versioned /v1
// surface (single-survey endpoints plus the multi-tenant tree), 410
// tombstones at the retired legacy unversioned paths, and the
// unversioned operational probes (/healthz, /readyz).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range []struct {
		path   string
		method string
		h      http.HandlerFunc
	}{
		{"/v1/result", http.MethodGet, s.handleResult},
		{"/v1/levels", http.MethodGet, s.handleLevels},
		{"/v1/epoch", http.MethodPost, s.handleEpoch},
		{"/v1/mechanism", http.MethodGet, s.handleMechanism},
		{"/v1/tailored", http.MethodGet, s.handleTailored},
		{"/v1/sample", http.MethodGet, s.handleSample},
		{"/v1/metrics", http.MethodGet, s.handleMetrics},
	} {
		h := requireMethod(rt.method, rt.h)
		mux.HandleFunc(rt.path, s.instrument(rt.path, h))
		legacy := strings.TrimPrefix(rt.path, "/v1")
		mux.HandleFunc(legacy, s.instrument(legacy, goneAlias(rt.path)))
	}
	// POST /v1/compare is new with the workbench API — it never had an
	// unversioned form, so it gets no legacy tombstone.
	mux.HandleFunc("/v1/compare", s.instrument("/v1/compare",
		requireMethod(http.MethodPost, s.handleCompare)))
	// The tenant tree dispatches methods inside the handlers (not via
	// "METHOD /path" patterns) so wrong-method requests get the typed
	// 405 envelope with an Allow header instead of the stdlib page.
	for _, rt := range []struct {
		pattern string
		method  string // "" = handler dispatches internally
		h       http.HandlerFunc
	}{
		{"/v1/tenants", "", s.handleTenants},
		{"/v1/tenants/{id}", "", s.handleTenantByID},
		{"/v1/tenants/{id}/release", http.MethodGet, s.handleTenantRelease},
		{"/v1/tenants/{id}/epoch", http.MethodPost, s.handleTenantEpoch},
		{"/v1/tenants/{id}/sample", http.MethodGet, s.handleTenantSample},
		{"/v1/tenants/{id}/accounting", http.MethodGet, s.handleTenantAccounting},
		{"/v1/tenants/{id}/tailored", http.MethodGet, s.handleTenantTailored},
	} {
		h := rt.h
		if rt.method != "" {
			h = requireMethod(rt.method, h)
		}
		mux.HandleFunc(rt.pattern, s.instrument(rt.pattern, h))
	}
	// Unknown /v1 routes get the typed envelope, not the stdlib 404
	// page, so clients can rely on the error shape across the surface.
	mux.HandleFunc("/v1/", s.instrument("/v1/*", func(w http.ResponseWriter, r *http.Request) {
		writeAPIError(w, http.StatusNotFound, "not_found", "unknown route %s", r.URL.Path)
	}))
	mux.HandleFunc("/", s.instrument("/", s.handleRoot))
	mux.HandleFunc("/healthz", s.instrument("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	}))
	mux.HandleFunc("/readyz", s.instrument("/readyz", s.handleReadyz))
	return mux
}

// requireMethod rejects other methods with the typed 405 envelope.
func requireMethod(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				"%s requires %s", r.URL.Path, method)
			return
		}
		h(w, r)
	}
}

// goneAlias is the tombstone for a retired legacy unversioned path:
// 410 with the typed envelope, plus a Link header naming the /v1
// successor so a stale client's failure message says exactly where to
// go. (These paths spent a deprecation cycle serving real responses
// with a Deprecation header before being retired.)
func goneAlias(successor string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		writeAPIError(w, http.StatusGone, "gone",
			"%s was retired; use %s", r.URL.Path, successor)
	}
}

// statusWriter records the status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-route counters and structured
// access logging (key=value pairs, one line per request).
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	st := &routeStat{}
	s.routes[route] = st
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h(sw, r)
		elapsed := time.Since(begin)
		st.count.Add(1)
		st.nanos.Add(uint64(elapsed.Nanoseconds()))
		if sw.status >= 400 {
			st.errors.Add(1)
		}
		if s.logRequests {
			log.Printf("access method=%s path=%s status=%d dur_us=%d remote=%s",
				r.Method, r.URL.Path, sw.status, elapsed.Microseconds(), r.RemoteAddr)
		}
	}
}

// --- handlers -------------------------------------------------------------

func (s *server) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeAPIError(w, http.StatusNotFound, "not_found", "unknown route %s", r.URL.Path)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"service": "minimaxdp multi-level count release (Algorithm 1)",
		"query":   fmt.Sprintf("adults in %s with flu", s.city),
		"levels":  len(s.alphas),
		"epoch":   s.state.Load().epoch,
		"endpoints": map[string]string{
			"GET /v1/result?level=K":                 "released result at privacy level K (1 = least private)",
			"GET /v1/levels":                         "privacy levels and their α values",
			"POST /v1/epoch":                         "advance to a fresh correlated draw",
			"GET /v1/mechanism?level=K":              "exact marginal mechanism G_{n,α_K} (public knowledge)",
			"GET /v1/tailored?loss=L&side=lo-hi&n=N": "engine-cached tailored-optimum solve (minimax §2.5 or model=bayesian)",
			"POST /v1/compare":                       "optimality-gap scorecard: baseline mechanisms vs the consumer's tailored optimum (JSON spec body)",
			"GET /v1/sample?level=K&input=i&count=M": "fresh draws of the public mechanism at a claimed input",
			"GET /v1/metrics":                        "serving, engine-cache, artifact-store, and tenant counters",
			"GET|POST /v1/tenants":                   "list / register tenants (own n, α-ladder, loss, budget)",
			"GET|DELETE /v1/tenants/{id}":            "describe / retire one tenant",
			"GET /v1/tenants/{id}/release?level=K":   "tenant's current-epoch released value at level K",
			"POST /v1/tenants/{id}/epoch":            "advance the tenant's cascade (spends α₁ of its budget)",
			"GET /v1/tenants/{id}/sample":            "draws of the tenant's public level mechanism",
			"GET /v1/tenants/{id}/accounting":        "tenant's exact cumulative privacy spend",
			"GET /v1/tenants/{id}/tailored?level=K":  "tailored solve for the tenant's configured consumer",
			"GET /healthz":                           "liveness probe",
			"GET /readyz":                            "readiness probe (503 while draining)",
		},
	})
}

func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *server) handleLevels(w http.ResponseWriter, _ *http.Request) {
	type level struct {
		Level int    `json:"level"`
		Alpha string `json:"alpha"`
	}
	out := make([]level, len(s.alphas))
	for i, a := range s.alphas {
		out[i] = level{Level: i + 1, Alpha: a.RatString()}
	}
	writeJSON(w, http.StatusOK, out)
}

// parseLevel reads a 1-based level query parameter (default 1).
func (s *server) parseLevel(r *http.Request) (int, error) {
	lvlStr := r.URL.Query().Get("level")
	if lvlStr == "" {
		lvlStr = "1"
	}
	lvl, err := strconv.Atoi(lvlStr)
	if err != nil || lvl < 1 {
		return 0, fmt.Errorf("level must be a positive integer")
	}
	if lvl > len(s.alphas) {
		return 0, fmt.Errorf("level %d out of range 1..%d", lvl, len(s.alphas))
	}
	return lvl, nil
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	lvl, err := s.parseLevel(r)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return
	}
	st := s.state.Load()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"epoch":  st.epoch,
		"level":  lvl,
		"alpha":  s.alphas[lvl-1].RatString(),
		"result": st.results[lvl-1],
	})
}

// handleMechanism serves the exact marginal mechanism of a level as
// JSON, so consumers can solve their optimal post-processing locally
// (the mechanism matrix is public knowledge; only the database is
// secret).
func (s *server) handleMechanism(w http.ResponseWriter, r *http.Request) {
	lvl, err := s.parseLevel(r)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return
	}
	m, err := s.plan.Marginal(lvl)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *server) handleEpoch(w http.ResponseWriter, _ *http.Request) {
	epoch, err := s.advance()
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"epoch": epoch})
}

// solveContext derives the context for one LP-backed request: the
// request context (canceled when the client disconnects) bounded by
// the server's solve timeout, if configured.
func (s *server) solveContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.solveTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.solveTimeout)
}

// resolveAlpha picks the privacy level for an LP-backed request: an
// explicit rational alpha wins, otherwise the 1-based ladder level
// (default 1). Both arrive as wire strings so the GET query and POST
// body surfaces share the exact validation.
func (s *server) resolveAlpha(alphaStr, levelStr string) (*big.Rat, error) {
	if alphaStr != "" {
		a, err := rational.Parse(alphaStr)
		if err != nil {
			return nil, fmt.Errorf("bad alpha: %w", err)
		}
		return a, nil
	}
	if levelStr == "" {
		levelStr = "1"
	}
	lvl, err := strconv.Atoi(levelStr)
	if err != nil || lvl < 1 {
		return nil, fmt.Errorf("level must be a positive integer")
	}
	if lvl > len(s.alphas) {
		return nil, fmt.Errorf("level %d out of range 1..%d", lvl, len(s.alphas))
	}
	return rational.Clone(s.alphas[lvl-1]), nil
}

// handleTailored answers "what is the optimal α-DP mechanism for this
// consumer?" via the engine-cached tailored solve (§2.5 LP for the
// default minimax model, the Ghosh-et-al. analogue for
// model=bayesian). The consumer arrives through the shared
// consumerSpec codec — the same one POST /v1/compare reads from its
// body — and the solve is keyed by (n, α, consumer identity), so
// repeat queries are cache lookups and concurrent identical
// first-time queries coalesce into one solve. The solve runs under
// the request context: client disconnects cancel it (503), the
// server's solve timeout bounds it (504), and the engine's in-flight
// bound sheds excess load (429).
func (s *server) handleTailored(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n := s.plan.N()
	if n > s.maxTailoredN {
		n = s.maxTailoredN
	}
	if nStr := q.Get("n"); nStr != "" {
		var err error
		n, err = strconv.Atoi(nStr)
		if err != nil || n < 1 {
			writeAPIError(w, http.StatusBadRequest, "invalid_argument", "n must be a positive integer")
			return
		}
		if n > s.maxTailoredN {
			writeAPIError(w, http.StatusBadRequest, "invalid_argument",
				"n %d exceeds the LP cap %d", n, s.maxTailoredN)
			return
		}
	}
	model, lf, err := consumerSpecFromQuery(q).build(n)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return
	}
	alpha, err := s.resolveAlpha(q.Get("alpha"), q.Get("level"))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return
	}
	ctx, cancel := s.solveContext(r)
	defer cancel()
	tl, err := s.eng.TailoredCtx(ctx, model, n, alpha)
	if err != nil {
		writeSolveError(w, err)
		return
	}
	resp := map[string]interface{}{
		"n":     n,
		"alpha": alpha.RatString(),
		"model": model.ModelName(),
		"loss":  lf.Name(),
	}
	// Field name says what the number is: worst-case loss over the
	// side set for minimax, prior-weighted expectation for Bayesian.
	if model.ModelName() == "bayesian" {
		resp["expected_loss"] = tl.Loss.RatString()
	} else {
		resp["minimax_loss"] = tl.Loss.RatString()
	}
	if sideStr := q.Get("side"); sideStr != "" {
		resp["side"] = sideStr
	}
	if q.Get("mech") == "1" {
		resp["mechanism"] = tl.Mechanism
	}
	writeJSON(w, http.StatusOK, resp)
}

// Pooled buffers for the sampling hot path: one draw buffer sized to
// the batch cap, one append-built JSON response buffer. Both reach
// steady-state capacity after the first few requests, after which
// handleSample allocates nothing of its own.
// jsonContentType is the canonical Content-Type value, shared so the
// hot path can assign it without allocating (see handleSample).
var jsonContentType = []string{"application/json"}

var (
	drawBufPool = sync.Pool{New: func() any {
		b := make([]int, maxSampleCount)
		return &b
	}}
	jsonBufPool = sync.Pool{New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	}}
)

// parseSampleQuery extracts level/input/count from the request
// without materializing url.Values (which allocates a map plus one
// slice per key). The raw query of a well-formed /v1/sample request
// contains no escapes, so the fast path is a plain byte scan; '%' or
// '+' falls back to the stdlib parser for correctness on exotic but
// legal encodings.
func (s *server) parseSampleQuery(r *http.Request) (lvl, input, count int, err error) {
	var lvlS, inS, cntS string
	if raw := r.URL.RawQuery; !strings.ContainsAny(raw, "%+") {
		for len(raw) > 0 {
			var pair string
			if i := strings.IndexByte(raw, '&'); i >= 0 {
				pair, raw = raw[:i], raw[i+1:]
			} else {
				pair, raw = raw, ""
			}
			k, v, _ := strings.Cut(pair, "=")
			switch k {
			case "level":
				lvlS = v
			case "input":
				inS = v
			case "count":
				cntS = v
			}
		}
	} else {
		q := r.URL.Query()
		lvlS, inS, cntS = q.Get("level"), q.Get("input"), q.Get("count")
	}
	lvl, input, count = 1, 0, 1
	if lvlS != "" {
		lvl, err = strconv.Atoi(lvlS)
		if err != nil || lvl < 1 {
			return 0, 0, 0, fmt.Errorf("level must be a positive integer")
		}
		if lvl > len(s.alphas) {
			return 0, 0, 0, fmt.Errorf("level %d out of range 1..%d", lvl, len(s.alphas))
		}
	}
	if inS != "" {
		input, err = strconv.Atoi(inS)
		if err != nil || input < 0 || input > s.plan.N() {
			return 0, 0, 0, fmt.Errorf("input must lie in [0,%d]", s.plan.N())
		}
	}
	if cntS != "" {
		count, err = strconv.Atoi(cntS)
		if err != nil || count < 1 || count > maxSampleCount {
			return 0, 0, 0, fmt.Errorf("count must lie in [1,%d]", maxSampleCount)
		}
	}
	return lvl, input, count, nil
}

// handleSample draws from the *public* mechanism of a level at a
// caller-claimed input, via the per-level samplers precompiled at
// startup. This never touches the secret query result — fresh draws
// of the truth would let readers average the noise away, which is
// exactly what the epoch snapshot exists to prevent.
//
// This is the server's hot path and is engineered allocation-free at
// steady state: query parsing scans the raw query, draws land in a
// pooled buffer via Sampler.SampleInto (one PRNG block, one counter
// update for the whole batch), and the response is append-built JSON
// on a pooled buffer — no encoding/json reflection anywhere. The
// hotpath annotation makes dpvet hold that line against the
// compiler's escape analysis.
//
//dpvet:hotpath
func (s *server) handleSample(w http.ResponseWriter, r *http.Request) {
	lvl, input, count, err := s.parseSampleQuery(r)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return
	}
	dbp := drawBufPool.Get().(*[]int)
	draws := (*dbp)[:count]
	s.levelSamplers[lvl-1].SampleInto(input, draws)

	jbp := jsonBufPool.Get().(*[]byte)
	b := (*jbp)[:0]
	b = append(b, `{"level":`...)
	b = strconv.AppendInt(b, int64(lvl), 10)
	// α strings are digit/slash only (big.Rat.RatString of a validated
	// level), so they embed in JSON without escaping.
	b = append(b, `,"alpha":"`...)
	b = append(b, s.alphaStrs[lvl-1]...)
	b = append(b, `","input":`...)
	b = strconv.AppendInt(b, int64(input), 10)
	b = append(b, `,"count":`...)
	b = strconv.AppendInt(b, int64(count), 10)
	b = append(b, `,"draws":[`...)
	for k, d := range draws {
		if k > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(d), 10)
	}
	b = append(b, "]}\n"...)
	drawBufPool.Put(dbp)

	// Direct map assignment of a shared value slice instead of
	// Header().Set, which allocates a fresh one-element slice per call.
	w.Header()["Content-Type"] = jsonContentType
	if _, err := w.Write(b); err != nil {
		log.Printf("dpserver: sample write: %v", err)
	}
	*jbp = b
	jsonBufPool.Put(jbp)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	type routeSnapshot struct {
		Count      uint64 `json:"count"`
		Errors     uint64 `json:"errors"`
		TotalNanos uint64 `json:"total_nanos"`
	}
	routes := make(map[string]routeSnapshot, len(s.routes))
	for route, st := range s.routes {
		routes[route] = routeSnapshot{
			Count:      st.count.Load(),
			Errors:     st.errors.Load(),
			TotalNanos: st.nanos.Load(),
		}
	}
	body := map[string]interface{}{
		"server": map[string]interface{}{
			"epoch":          s.state.Load().epoch,
			"levels":         len(s.alphas),
			"n":              s.plan.N(),
			"uptime_seconds": time.Since(s.start).Seconds(),
			"ready":          s.ready.Load(),
			"routes":         routes,
		},
		"engine": s.eng.Metrics(),
		"tenants": map[string]interface{}{
			"count":             s.registry.Len(),
			"cached_runtimes":   s.runtimes.len(),
			"runtime_builds":    s.runtimes.builds.Load(),
			"runtime_evictions": s.runtimes.evictions.Load(),
		},
	}
	if s.store != nil {
		body["store"] = s.store.Stats()
	}
	writeJSON(w, http.StatusOK, body)
}
