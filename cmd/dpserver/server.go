// Server core: state, routing, instrumentation, and handlers.
// main.go owns flags, the http.Server, and the shutdown path.

package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/database"
	"minimaxdp/internal/engine"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
	"minimaxdp/internal/sample"
)

// defaultMaxTailoredN caps the domain size accepted by /tailored: the
// §2.5 LP has (n+1)²+1 variables and is meant here as an interactive
// demonstration, not a bulk workload.
const defaultMaxTailoredN = 24

// maxSampleCount caps one /sample batch.
const maxSampleCount = 4096

// epochState is one epoch's correlated release: every level's result
// comes from a single Algorithm 1 cascade draw, so colluding readers
// cannot average away the noise (Lemma 4). The struct is immutable
// once published; handlers read it through an atomic pointer and
// never lock.
type epochState struct {
	epoch   int
	results []int
}

// routeStat accumulates per-route serving counters.
type routeStat struct {
	count  atomic.Uint64
	errors atomic.Uint64
	nanos  atomic.Uint64
}

// server wires the engine, the release plan, and the epoch state.
// Request handling is lock-free: the current epoch lives behind an
// atomic snapshot pointer, exact artifacts come from the engine's
// caches, and the only mutex guards the PRNG used by the rare epoch
// advance.
type server struct {
	eng          *engine.Engine
	plan         *release.Plan
	truth        int
	city         string
	alphas       []*big.Rat
	maxTailoredN int
	logRequests  bool
	start        time.Time

	mu  sync.Mutex // guards rng (sample.NewRand PRNGs are not goroutine-safe)
	rng *rand.Rand

	state  atomic.Pointer[epochState]
	routes map[string]*routeStat
}

// parseLevels parses the -levels flag: comma-separated rationals that
// must be strictly increasing within (0,1). It owns the full
// validation so the fuzz target FuzzParseLevels can exercise parser
// and invariants together.
func parseLevels(s string) ([]*big.Rat, error) {
	one := rational.One()
	var out []*big.Rat
	for i, part := range strings.Split(s, ",") {
		a, err := rational.Parse(part)
		if err != nil {
			return nil, fmt.Errorf("level %d: %w", i+1, err)
		}
		if a.Sign() <= 0 || a.Cmp(one) >= 0 {
			return nil, fmt.Errorf("level %d: %s outside (0,1)", i+1, a.RatString())
		}
		if i > 0 && a.Cmp(out[i-1]) <= 0 {
			return nil, fmt.Errorf("level %d: %s not greater than level %d (%s)",
				i+1, a.RatString(), i, out[i-1].RatString())
		}
		out = append(out, a)
	}
	return out, nil
}

// parseLoss resolves the /tailored loss parameter. width applies only
// to the deadband family.
func parseLoss(name, width string) (loss.Function, error) {
	switch name {
	case "", "absolute", "abs":
		return loss.Absolute{}, nil
	case "squared", "sq":
		return loss.Squared{}, nil
	case "zero-one", "zeroone", "01":
		return loss.ZeroOne{}, nil
	case "deadband":
		w := 1
		if width != "" {
			var err error
			w, err = strconv.Atoi(width)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("width must be a non-negative integer, got %q", width)
			}
		}
		return loss.Deadband{Width: w}, nil
	default:
		return nil, fmt.Errorf("unknown loss %q (absolute, squared, zero-one, deadband)", name)
	}
}

// parseSide resolves a "lo-hi" side-information interval; empty means
// no side information (the full domain).
func parseSide(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	lo, hi, ok := strings.Cut(s, "-")
	if !ok {
		return nil, fmt.Errorf("side must be lo-hi, got %q", s)
	}
	l, err := strconv.Atoi(lo)
	if err != nil {
		return nil, fmt.Errorf("side lower bound %q: %w", lo, err)
	}
	h, err := strconv.Atoi(hi)
	if err != nil {
		return nil, fmt.Errorf("side upper bound %q: %w", hi, err)
	}
	if l < 0 || h < l {
		return nil, fmt.Errorf("side %q: need 0 ≤ lo ≤ hi", s)
	}
	return consumer.Interval(l, h), nil
}

func newServer(n int, city string, fluRate float64, levelsStr string, seed int64) (*server, error) {
	alphas, err := parseLevels(levelsStr)
	if err != nil {
		return nil, fmt.Errorf("bad levels: %w", err)
	}
	eng := engine.New(engine.Config{Seed: seed})
	rng := sample.NewRand(seed)
	db := database.Synthetic(n, city, fluRate, rng)
	truth := database.FluQuery(city).Eval(db)
	plan, err := eng.ReleasePlan(n, alphas)
	if err != nil {
		return nil, err
	}
	s := &server{
		eng:          eng,
		plan:         plan,
		truth:        truth,
		city:         city,
		alphas:       alphas,
		maxTailoredN: defaultMaxTailoredN,
		start:        time.Now(),
		rng:          rng,
		routes:       make(map[string]*routeStat),
	}
	s.state.Store(&epochState{})
	if _, err := s.advance(); err != nil {
		return nil, err
	}
	return s, nil
}

// advance draws a fresh correlated cascade and publishes it as the
// next epoch's snapshot.
func (s *server) advance() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out, err := s.plan.Release(s.truth, s.rng)
	if err != nil {
		return 0, err
	}
	next := &epochState{epoch: s.state.Load().epoch + 1, results: out}
	s.state.Store(next)
	return next.epoch, nil
}

// handler builds the instrumented route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	for route, h := range map[string]http.HandlerFunc{
		"/":          s.handleRoot,
		"/result":    s.handleResult,
		"/levels":    s.handleLevels,
		"/epoch":     s.handleEpoch,
		"/mechanism": s.handleMechanism,
		"/tailored":  s.handleTailored,
		"/sample":    s.handleSample,
		"/metrics":   s.handleMetrics,
		"/healthz": func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		},
	} {
		mux.HandleFunc(route, s.instrument(route, h))
	}
	return mux
}

// statusWriter records the status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-route counters and structured
// access logging (key=value pairs, one line per request).
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	st := &routeStat{}
	s.routes[route] = st
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h(sw, r)
		elapsed := time.Since(begin)
		st.count.Add(1)
		st.nanos.Add(uint64(elapsed.Nanoseconds()))
		if sw.status >= 400 {
			st.errors.Add(1)
		}
		if s.logRequests {
			log.Printf("access method=%s path=%s status=%d dur_us=%d remote=%s",
				r.Method, r.URL.Path, sw.status, elapsed.Microseconds(), r.RemoteAddr)
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("dpserver: encode: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"service": "minimaxdp multi-level count release (Algorithm 1)",
		"query":   fmt.Sprintf("adults in %s with flu", s.city),
		"levels":  len(s.alphas),
		"epoch":   s.state.Load().epoch,
		"endpoints": map[string]string{
			"GET /result?level=K":                 "released result at privacy level K (1 = least private)",
			"GET /levels":                         "privacy levels and their α values",
			"POST /epoch":                         "advance to a fresh correlated draw",
			"GET /mechanism?level=K":              "exact marginal mechanism G_{n,α_K} (public knowledge)",
			"GET /tailored?loss=L&side=lo-hi&n=N": "engine-cached §2.5 tailored-optimum solve",
			"GET /sample?level=K&input=i&count=M": "fresh draws of the public mechanism at a claimed input",
			"GET /metrics":                        "serving and engine-cache counters",
			"GET /healthz":                        "liveness probe",
		},
	})
}

func (s *server) handleLevels(w http.ResponseWriter, _ *http.Request) {
	type level struct {
		Level int    `json:"level"`
		Alpha string `json:"alpha"`
	}
	out := make([]level, len(s.alphas))
	for i, a := range s.alphas {
		out[i] = level{Level: i + 1, Alpha: a.RatString()}
	}
	writeJSON(w, http.StatusOK, out)
}

// parseLevel reads a 1-based level query parameter (default 1).
func (s *server) parseLevel(r *http.Request) (int, error) {
	lvlStr := r.URL.Query().Get("level")
	if lvlStr == "" {
		lvlStr = "1"
	}
	lvl, err := strconv.Atoi(lvlStr)
	if err != nil || lvl < 1 {
		return 0, fmt.Errorf("level must be a positive integer")
	}
	if lvl > len(s.alphas) {
		return 0, fmt.Errorf("level %d out of range 1..%d", lvl, len(s.alphas))
	}
	return lvl, nil
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	lvl, err := s.parseLevel(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := s.state.Load()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"epoch":  st.epoch,
		"level":  lvl,
		"alpha":  s.alphas[lvl-1].RatString(),
		"result": st.results[lvl-1],
	})
}

// handleMechanism serves the exact marginal mechanism of a level as
// JSON, so consumers can solve their optimal post-processing locally
// (the mechanism matrix is public knowledge; only the database is
// secret).
func (s *server) handleMechanism(w http.ResponseWriter, r *http.Request) {
	lvl, err := s.parseLevel(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := s.plan.Marginal(lvl)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *server) handleEpoch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	epoch, err := s.advance()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"epoch": epoch})
}

// handleTailored answers "what is the optimal α-DP mechanism for this
// consumer?" via the engine-cached §2.5 LP. The solve is keyed by
// (n, α, loss, side), so repeat queries — the common case for a
// public dashboard — are cache lookups, and concurrent identical
// first-time queries are coalesced into one solve.
func (s *server) handleTailored(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lf, err := parseLoss(q.Get("loss"), q.Get("width"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	side, err := parseSide(q.Get("side"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n := s.plan.N()
	if n > s.maxTailoredN {
		n = s.maxTailoredN
	}
	if nStr := q.Get("n"); nStr != "" {
		n, err = strconv.Atoi(nStr)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		if n > s.maxTailoredN {
			writeError(w, http.StatusBadRequest, "n %d exceeds the LP cap %d", n, s.maxTailoredN)
			return
		}
	}
	var alpha *big.Rat
	if aStr := q.Get("alpha"); aStr != "" {
		alpha, err = rational.Parse(aStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad alpha: %v", err)
			return
		}
	} else {
		lvl, err := s.parseLevel(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		alpha = s.alphas[lvl-1]
	}
	c := &consumer.Consumer{Loss: lf, Side: side}
	tl, err := s.eng.TailoredMechanism(c, n, alpha)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := map[string]interface{}{
		"n":            n,
		"alpha":        alpha.RatString(),
		"loss":         lf.Name(),
		"minimax_loss": tl.Loss.RatString(),
	}
	if sideStr := q.Get("side"); sideStr != "" {
		resp["side"] = sideStr
	}
	if q.Get("mech") == "1" {
		resp["mechanism"] = tl.Mechanism
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSample draws from the *public* mechanism of a level at a
// caller-claimed input, via the engine's pooled alias samplers. This
// never touches the secret query result — fresh draws of the truth
// would let readers average the noise away, which is exactly what the
// epoch snapshot exists to prevent.
func (s *server) handleSample(w http.ResponseWriter, r *http.Request) {
	lvl, err := s.parseLevel(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := r.URL.Query()
	input := 0
	if inStr := q.Get("input"); inStr != "" {
		input, err = strconv.Atoi(inStr)
		if err != nil || input < 0 || input > s.plan.N() {
			writeError(w, http.StatusBadRequest, "input must lie in [0,%d]", s.plan.N())
			return
		}
	}
	count := 1
	if cStr := q.Get("count"); cStr != "" {
		count, err = strconv.Atoi(cStr)
		if err != nil || count < 1 || count > maxSampleCount {
			writeError(w, http.StatusBadRequest, "count must lie in [1,%d]", maxSampleCount)
			return
		}
	}
	smp, err := s.eng.GeometricSampler(s.plan.N(), s.alphas[lvl-1])
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"level": lvl,
		"alpha": s.alphas[lvl-1].RatString(),
		"input": input,
		"draws": smp.SampleN(input, count),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	type routeSnapshot struct {
		Count      uint64 `json:"count"`
		Errors     uint64 `json:"errors"`
		TotalNanos uint64 `json:"total_nanos"`
	}
	routes := make(map[string]routeSnapshot, len(s.routes))
	for route, st := range s.routes {
		routes[route] = routeSnapshot{
			Count:      st.count.Load(),
			Errors:     st.errors.Load(),
			TotalNanos: st.nanos.Load(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"server": map[string]interface{}{
			"epoch":          s.state.Load().epoch,
			"levels":         len(s.alphas),
			"n":              s.plan.N(),
			"uptime_seconds": time.Since(s.start).Seconds(),
			"routes":         routes,
		},
		"engine": s.eng.Metrics(),
	})
}
