// Tests for POST /v1/compare: the wire contract of the optimality-gap
// scorecard, the Theorem 1 zero-gap guarantee as served JSON, cache
// visibility through /v1/metrics, and the error envelope paths of the
// shared consumer-spec codec.

package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// compareWire mirrors the POST /v1/compare response body.
type compareWire struct {
	N            int    `json:"n"`
	Alpha        string `json:"alpha"`
	Model        string `json:"model"`
	TailoredLoss string `json:"tailored_loss"`
	Baselines    []struct {
		Baseline        string `json:"baseline"`
		Loss            string `json:"loss"`
		InteractionLoss string `json:"interaction_loss"`
		Gap             string `json:"gap"`
		BestAlpha       string `json:"best_alpha"`
	} `json:"baselines"`
}

func postCompare(t *testing.T, mux http.Handler, body string) (*httptest.ResponseRecorder, compareWire) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/compare", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	var out compareWire
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad compare response: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, out
}

// TestCompareZeroGapServed: Theorem 1 part 2 on the wire — for minimax
// consumers across losses and side sets, the geometric baseline's gap
// is the exact string "0" at the paper's demonstration sizes.
func TestCompareZeroGapServed(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	for _, body := range []string{
		`{"n":3,"alpha":"1/4","consumer":{"loss":"absolute"}}`,
		`{"n":4,"alpha":"1/3","consumer":{"loss":"squared"}}`,
		`{"n":4,"level":2,"consumer":{"loss":"zero-one","side":"1-3"}}`,
		`{"n":3,"consumer":{"model":"minimax","loss":"deadband","width":"1"}}`,
	} {
		rec, out := postCompare(t, mux, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", body, rec.Code, rec.Body.String())
		}
		if out.Model != "minimax" {
			t.Fatalf("%s: model %q", body, out.Model)
		}
		var sawGeometric bool
		for _, e := range out.Baselines {
			if e.Baseline != "geometric" {
				continue
			}
			sawGeometric = true
			if e.Gap != "0" {
				t.Errorf("%s: geometric gap = %q, want exactly \"0\"", body, e.Gap)
			}
			if e.InteractionLoss != out.TailoredLoss {
				t.Errorf("%s: interaction %s != tailored %s",
					body, e.InteractionLoss, out.TailoredLoss)
			}
			if e.BestAlpha != out.Alpha {
				t.Errorf("%s: geometric best_alpha %s, want %s", body, e.BestAlpha, out.Alpha)
			}
		}
		if !sawGeometric {
			t.Fatalf("%s: no geometric entry in %v", body, out.Baselines)
		}
	}
}

// TestCompareDefaultSetAndBaselines: an empty baseline list serves the
// default trio, and an explicit list is honored in canonical order.
func TestCompareDefaultSetAndBaselines(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	rec, out := postCompare(t, mux, `{"n":3,"alpha":"1/3","consumer":{}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	got := make([]string, len(out.Baselines))
	for i, e := range out.Baselines {
		got[i] = e.Baseline
	}
	if fmt.Sprint(got) != "[geometric laplace staircase]" {
		t.Errorf("default baseline set = %v", got)
	}
	rec, out = postCompare(t, mux,
		`{"n":3,"alpha":"1/3","consumer":{},"baselines":["staircase:3","geometric"]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("explicit baselines: status %d: %s", rec.Code, rec.Body.String())
	}
	if len(out.Baselines) != 2 || out.Baselines[0].Baseline != "geometric" ||
		out.Baselines[1].Baseline != "staircase:3" {
		t.Errorf("explicit baselines = %+v", out.Baselines)
	}
}

// TestCompareBayesianServed: the Bayesian model flows through the same
// route, with uniform default prior and explicit rational priors.
func TestCompareBayesianServed(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	rec, out := postCompare(t, mux,
		`{"n":3,"alpha":"1/4","consumer":{"model":"bayesian","loss":"absolute"}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if out.Model != "bayesian" {
		t.Fatalf("model = %q", out.Model)
	}
	for _, e := range out.Baselines {
		if e.Baseline == "laplace" {
			continue // not α-DP; may undercut the α-DP tailored floor
		}
		if strings.HasPrefix(e.Gap, "-") {
			t.Errorf("%s: negative Bayesian gap %s for an α-DP baseline", e.Baseline, e.Gap)
		}
	}
	rec, _ = postCompare(t, mux,
		`{"n":2,"alpha":"1/4","consumer":{"model":"bayesian","prior":["1/2","1/4","1/4"]}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("explicit prior: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestCompareCacheHitVisible: a repeat POST is served from the engine's
// compare cache, and /v1/metrics shows the hit.
func TestCompareCacheHitVisible(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	body := `{"n":3,"alpha":"1/2","consumer":{"loss":"absolute"}}`
	for i := 0; i < 2; i++ {
		if rec, _ := postCompare(t, mux, body); rec.Code != http.StatusOK {
			t.Fatalf("POST %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	var m struct {
		Engine struct {
			Compares struct {
				Requests uint64 `json:"requests"`
				Cache    struct {
					Hits   uint64 `json:"hits"`
					Misses uint64 `json:"misses"`
				} `json:"cache"`
			} `json:"compares"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	c := m.Engine.Compares
	if c.Requests != 2 || c.Cache.Hits != 1 || c.Cache.Misses != 1 {
		t.Errorf("compare metrics = %+v, want 2 requests / 1 hit / 1 miss", c)
	}
}

// TestCompareErrors drives every 4xx path of the route and pins the
// envelope codes; the unknown-loss message must quote the canonical
// name list from the registry.
func TestCompareErrors(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"consumer":{},"bogus":1}`},
		{"trailing data", `{"consumer":{}} {"consumer":{}}`},
		{"negative n", `{"n":-2,"consumer":{}}`},
		{"n over cap", `{"n":9999,"consumer":{}}`},
		{"bad alpha", `{"alpha":"zzz","consumer":{}}`},
		{"bad level", `{"level":99,"consumer":{}}`},
		{"unknown loss", `{"n":3,"consumer":{"loss":"nope"}}`},
		{"width on absolute", `{"n":3,"consumer":{"loss":"absolute","width":"2"}}`},
		{"bad side", `{"n":3,"consumer":{"side":"9-2"}}`},
		{"prior on minimax", `{"n":3,"consumer":{"prior":["1/2","1/2"]}}`},
		{"side on bayesian", `{"n":3,"consumer":{"model":"bayesian","side":"1-2"}}`},
		{"bad prior entry", `{"n":3,"consumer":{"model":"bayesian","prior":["x"]}}`},
		{"prior length mismatch", `{"n":3,"consumer":{"model":"bayesian","prior":["1/2","1/2"]}}`},
		{"unknown model", `{"n":3,"consumer":{"model":"frequentist"}}`},
		{"unknown baseline", `{"n":3,"consumer":{},"baselines":["gauss"]}`},
		{"baseline bad width", `{"n":3,"consumer":{},"baselines":["staircase:0"]}`},
	}
	for _, tc := range cases {
		rec, _ := postCompare(t, mux, tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, rec.Code, rec.Body.String())
			continue
		}
		if code := decodeEnvelope(t, rec); code != "invalid_argument" {
			t.Errorf("%s: code %q", tc.name, code)
		}
	}
	rec, _ := postCompare(t, mux, `{"n":3,"consumer":{"loss":"nope"}}`)
	for _, canonical := range []string{"absolute", "squared", "zero-one", "deadband"} {
		if !strings.Contains(rec.Body.String(), canonical) {
			t.Errorf("unknown-loss envelope missing canonical name %q: %s",
				canonical, rec.Body.String())
		}
	}

	// Wrong method: typed 405 with an Allow header.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/compare", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/compare: status %d", rec.Code)
	}
	if code := decodeEnvelope(t, rec); code != "method_not_allowed" {
		t.Errorf("GET /v1/compare: code %q", code)
	}
	if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q, want POST", allow)
	}

	// No legacy tombstone: /compare never existed unversioned, so it is
	// a plain 404, not a 410.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/compare", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("POST /compare: status %d, want 404", rec.Code)
	}
}

// TestTailoredBayesianQuery: the shared codec gives the GET route the
// bayesian model too, and the response names the loss correctly.
func TestTailoredBayesianQuery(t *testing.T) {
	s := newTestServer(t)
	mux := s.handler()
	rec, body := get(t, mux, "/v1/tailored?model=bayesian&loss=absolute&n=3&alpha=1/4")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if body["model"] != "bayesian" {
		t.Errorf("model = %v", body["model"])
	}
	if _, ok := body["expected_loss"]; !ok {
		t.Errorf("bayesian tailored response missing expected_loss: %v", body)
	}
	if _, ok := body["minimax_loss"]; ok {
		t.Errorf("bayesian tailored response carries minimax_loss: %v", body)
	}
	// Explicit prior via comma-separated query form.
	rec, _ = get(t, mux, "/v1/tailored?model=bayesian&n=2&alpha=1/4&prior=1/2,1/4,1/4")
	if rec.Code != http.StatusOK {
		t.Fatalf("prior query: status %d: %s", rec.Code, rec.Body.String())
	}
	// Minimax responses are unchanged by the codec swap.
	rec, body = get(t, mux, "/v1/tailored?loss=absolute&n=3&alpha=1/4")
	if rec.Code != http.StatusOK {
		t.Fatalf("minimax: status %d", rec.Code)
	}
	if body["model"] != "minimax" || body["loss"] != "absolute" {
		t.Errorf("minimax response = %v", body)
	}
	if _, ok := body["minimax_loss"]; !ok {
		t.Errorf("minimax tailored response missing minimax_loss: %v", body)
	}
}
