// Multi-tenant serving surface: tenant lifecycle endpoints, the
// per-tenant compiled-runtime cache, and the per-tenant release /
// epoch / sample / accounting / tailored handlers.
//
// Identity and accounting live in the tenant registry
// (internal/tenant) and are never evicted; the compiled runtime — the
// Algorithm 1 release plan plus one precompiled sampler per level —
// is a pure function of the tenant's (n, α-ladder) and lives in a
// bounded LRU shared by ALL tenants, so a fleet of rarely-queried
// tenants cannot pin memory. An evicted runtime rebuilds on next use
// through the engine, whose in-memory cache and disk-backed artifact
// store make the rebuild a lookup, not a solve.

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/engine"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
	"minimaxdp/internal/tenant"
)

// maxTenantBody caps one POST /v1/tenants request body.
const maxTenantBody = 1 << 20

// defaultMaxTenantRuntimes bounds the compiled-runtime cache when the
// flag leaves it unset.
const defaultMaxTenantRuntimes = 64

// tenantSpec is the wire form of a tenant, used both by POST
// /v1/tenants and by the -tenants-config preload file. Every numeric
// privacy parameter is a rational STRING — floats never cross this
// boundary.
type tenantSpec struct {
	ID     string   `json:"id"`
	N      int      `json:"n"`
	Truth  *int     `json:"truth"`
	Levels []string `json:"levels"`
	Loss   string   `json:"loss,omitempty"`
	Width  int      `json:"width,omitempty"`
	Side   string   `json:"side,omitempty"` // "lo-hi" interval, as in /v1/tailored
	// MinAlpha is the privacy budget floor; empty = unmetered.
	MinAlpha string `json:"min_alpha,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
}

// tenantConfigFile is the -tenants-config preload format.
type tenantConfigFile struct {
	Tenants []tenantSpec `json:"tenants"`
}

// toConfig validates the wire spec into a tenant.Config.
func (sp *tenantSpec) toConfig() (tenant.Config, error) {
	var cfg tenant.Config
	if sp.Truth == nil {
		return cfg, fmt.Errorf("tenant %q: truth is required", sp.ID)
	}
	if len(sp.Levels) == 0 {
		return cfg, fmt.Errorf("tenant %q: levels is required", sp.ID)
	}
	alphas := make([]*big.Rat, len(sp.Levels))
	for i, ls := range sp.Levels {
		a, err := rational.Parse(ls)
		if err != nil {
			return cfg, fmt.Errorf("tenant %q: level %d: %w", sp.ID, i+1, err)
		}
		alphas[i] = a
	}
	// Parse eagerly so config-file typos fail registration, not the
	// first tailored query.
	if _, err := lossFromConfig(sp.Loss, sp.Width); err != nil {
		return cfg, fmt.Errorf("tenant %q: %w", sp.ID, err)
	}
	side, err := parseSide(sp.Side)
	if err != nil {
		return cfg, fmt.Errorf("tenant %q: %w", sp.ID, err)
	}
	var minAlpha *big.Rat
	if sp.MinAlpha != "" {
		minAlpha, err = rational.Parse(sp.MinAlpha)
		if err != nil {
			return cfg, fmt.Errorf("tenant %q: min_alpha: %w", sp.ID, err)
		}
	}
	return tenant.Config{
		ID:        sp.ID,
		N:         sp.N,
		Truth:     *sp.Truth,
		Alphas:    alphas,
		Loss:      sp.Loss,
		LossWidth: sp.Width,
		Side:      side,
		MinAlpha:  minAlpha,
		Seed:      sp.Seed,
	}, nil
}

// --- compiled-runtime cache -----------------------------------------------

// tenantRuntime is a tenant's compiled serving state: the release
// plan and the per-level samplers with prerendered α strings. It
// holds NO tenant-private state (no truth, no PRNG, no accounting),
// so evicting and rebuilding one is invisible to the tenant — and a
// cache bug can at worst serve the wrong *public* artifact shape,
// which the tenant geometry check in Advance still rejects.
type tenantRuntime struct {
	plan      *release.Plan
	samplers  []*engine.Sampler
	alphaStrs []string
	lastUsed  atomic.Uint64
}

// runtimeCache is the global LRU over compiled tenant runtimes.
type runtimeCache struct {
	cap       int
	clock     atomic.Uint64
	builds    atomic.Uint64
	evictions atomic.Uint64

	mu      sync.Mutex
	entries map[string]*tenantRuntime
}

func newRuntimeCache(capacity int) *runtimeCache {
	if capacity <= 0 {
		capacity = defaultMaxTenantRuntimes
	}
	return &runtimeCache{cap: capacity, entries: make(map[string]*tenantRuntime)}
}

// get returns the compiled runtime for a tenant, building (and
// caching, evicting the least-recently-used other tenant past the
// bound) on miss. The build runs under the cache mutex: it is either
// an engine cache/disk lookup (fast) or a first-ever derivation,
// and serializing builds keeps eviction bookkeeping trivial.
func (c *runtimeCache) get(id string, build func() (*tenantRuntime, error)) (*tenantRuntime, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rt, ok := c.entries[id]; ok {
		rt.lastUsed.Store(c.clock.Add(1))
		return rt, nil
	}
	rt, err := build()
	if err != nil {
		return nil, err
	}
	c.builds.Add(1)
	rt.lastUsed.Store(c.clock.Add(1))
	c.entries[id] = rt
	for len(c.entries) > c.cap {
		var oldestID string
		var oldest uint64 = ^uint64(0)
		for eid, e := range c.entries {
			if eid == id {
				continue
			}
			if u := e.lastUsed.Load(); u < oldest {
				oldest, oldestID = u, eid
			}
		}
		if oldestID == "" {
			break
		}
		delete(c.entries, oldestID)
		c.evictions.Add(1)
	}
	return rt, nil
}

// drop removes a deleted tenant's runtime.
func (c *runtimeCache) drop(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, id)
}

// len reports the number of cached runtimes.
func (c *runtimeCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// --- registration ---------------------------------------------------------

// buildRuntime compiles a tenant's serving state through the engine.
func (s *server) buildRuntime(t *tenant.Tenant) (*tenantRuntime, error) {
	alphas := t.Alphas()
	plan, err := s.eng.ReleasePlan(t.N(), alphas)
	if err != nil {
		return nil, err
	}
	samplers := make([]*engine.Sampler, len(alphas))
	alphaStrs := make([]string, len(alphas))
	for i, a := range alphas {
		samplers[i], err = s.eng.Sampler(context.Background(), engine.SamplerSpec{N: t.N(), Alpha: a})
		if err != nil {
			return nil, fmt.Errorf("compiling level %d sampler: %w", i+1, err)
		}
		alphaStrs[i] = a.RatString()
	}
	return &tenantRuntime{plan: plan, samplers: samplers, alphaStrs: alphaStrs}, nil
}

// registerTenant validates a spec, creates the tenant, compiles its
// runtime, and publishes its first epoch. On any failure the registry
// is left unchanged.
func (s *server) registerTenant(sp *tenantSpec) (*tenant.Tenant, error) {
	cfg, err := sp.toConfig()
	if err != nil {
		return nil, err
	}
	t, err := tenant.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.registry.Add(t); err != nil {
		return nil, err
	}
	rt, err := s.runtimes.get(t.ID(), func() (*tenantRuntime, error) { return s.buildRuntime(t) })
	if err == nil {
		_, err = t.Advance(rt.plan)
	}
	if err != nil {
		s.registry.Delete(t.ID())
		s.runtimes.drop(t.ID())
		return nil, err
	}
	return t, nil
}

// tenantSummary is the wire form of a registered tenant's public
// state. The truth, by design, has no wire form.
func tenantSummary(t *tenant.Tenant) map[string]interface{} {
	lossName, width := t.Loss()
	if lossName == "" {
		lossName = "absolute"
	}
	alphas := t.Alphas()
	levels := make([]string, len(alphas))
	for i, a := range alphas {
		levels[i] = a.RatString()
	}
	epoch := 0
	if e := t.Epoch(); e != nil {
		epoch = e.Epoch
	}
	out := map[string]interface{}{
		"id":     t.ID(),
		"n":      t.N(),
		"levels": levels,
		"loss":   lossName,
		"epoch":  epoch,
	}
	if lossName == "deadband" {
		out["width"] = width
	}
	if side := t.Side(); len(side) > 0 {
		out["side_points"] = len(side)
	}
	return out
}

func accountingBody(t *tenant.Tenant) map[string]interface{} {
	acc := t.Accounting()
	out := map[string]interface{}{
		"epochs":            acc.Epochs,
		"spent_alpha":       acc.SpentAlpha.RatString(),
		"next_draw_allowed": acc.NextDrawAllowed,
	}
	if acc.BudgetAlpha != nil {
		out["budget_alpha"] = acc.BudgetAlpha.RatString()
	}
	return out
}

// --- handlers -------------------------------------------------------------

// handleTenants serves the collection: GET lists, POST registers.
func (s *server) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		ids := s.registry.IDs()
		out := make([]map[string]interface{}, 0, len(ids))
		for _, id := range ids {
			if t, ok := s.registry.Get(id); ok {
				out = append(out, tenantSummary(t))
			}
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"tenants": out})
	case http.MethodPost:
		var sp tenantSpec
		body := http.MaxBytesReader(w, r.Body, maxTenantBody)
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			writeAPIError(w, http.StatusBadRequest, "invalid_argument", "bad tenant spec: %v", err)
			return
		}
		t, err := s.registerTenant(&sp)
		if err != nil {
			s.writeTenantError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, tenantSummary(t))
	default:
		w.Header().Set("Allow", "GET, POST")
		writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"%s requires GET or POST", r.URL.Path)
	}
}

// writeTenantError maps registration/advance failures: duplicate ids
// conflict, an exhausted budget is a (well-understood) refusal, and
// anything else is a bad spec.
func (s *server) writeTenantError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, tenant.ErrBudgetExhausted):
		writeAPIError(w, http.StatusForbidden, "budget_exhausted", "%v", err)
	case errors.Is(err, tenant.ErrDuplicateID):
		writeAPIError(w, http.StatusConflict, "conflict", "%v", err)
	default:
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
	}
}

// lookupTenant resolves {id} or writes the 404 envelope.
func (s *server) lookupTenant(w http.ResponseWriter, r *http.Request) (*tenant.Tenant, bool) {
	id := r.PathValue("id")
	t, ok := s.registry.Get(id)
	if !ok {
		writeAPIError(w, http.StatusNotFound, "not_found", "no tenant %q", id)
		return nil, false
	}
	return t, true
}

// handleTenantByID serves one tenant: GET describes (summary +
// accounting), DELETE retires it.
func (s *server) handleTenantByID(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		t, ok := s.lookupTenant(w, r)
		if !ok {
			return
		}
		out := tenantSummary(t)
		out["accounting"] = accountingBody(t)
		writeJSON(w, http.StatusOK, out)
	case http.MethodDelete:
		id := r.PathValue("id")
		if !s.registry.Delete(id) {
			writeAPIError(w, http.StatusNotFound, "not_found", "no tenant %q", id)
			return
		}
		s.runtimes.drop(id)
		writeJSON(w, http.StatusOK, map[string]interface{}{"id": id, "deleted": true})
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeAPIError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"%s requires GET or DELETE", r.URL.Path)
	}
}

// tenantLevel reads ?level=K against a tenant's ladder (default 1).
func tenantLevel(r *http.Request, t *tenant.Tenant) (int, error) {
	lvlStr := r.URL.Query().Get("level")
	if lvlStr == "" {
		lvlStr = "1"
	}
	lvl, err := strconv.Atoi(lvlStr)
	if err != nil || lvl < 1 {
		return 0, fmt.Errorf("level must be a positive integer")
	}
	if lvl > t.Levels() {
		return 0, fmt.Errorf("level %d out of range 1..%d", lvl, t.Levels())
	}
	return lvl, nil
}

// handleTenantRelease returns the tenant's current-epoch released
// value at a level — the multi-tenant analogue of /v1/result.
func (s *server) handleTenantRelease(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookupTenant(w, r)
	if !ok {
		return
	}
	lvl, err := tenantLevel(r, t)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return
	}
	e := t.Epoch()
	result, err := e.Result(lvl)
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	a, err := t.Alpha(lvl)
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tenant": t.ID(),
		"epoch":  e.Epoch,
		"level":  lvl,
		"alpha":  a.RatString(),
		"result": result,
	})
}

// handleTenantEpoch advances the tenant to a fresh correlated draw,
// spending α₁ of its budget (Lemma 4 + sequential composition).
func (s *server) handleTenantEpoch(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookupTenant(w, r)
	if !ok {
		return
	}
	rt, err := s.runtimes.get(t.ID(), func() (*tenantRuntime, error) { return s.buildRuntime(t) })
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	e, err := t.Advance(rt.plan)
	if err != nil {
		s.writeTenantError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tenant":     t.ID(),
		"epoch":      e.Epoch,
		"accounting": accountingBody(t),
	})
}

// handleTenantSample draws from the tenant's public level mechanism
// at a caller-claimed input, via the cached compiled runtime.
func (s *server) handleTenantSample(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookupTenant(w, r)
	if !ok {
		return
	}
	lvl, err := tenantLevel(r, t)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return
	}
	q := r.URL.Query()
	input, count := 0, 1
	if inS := q.Get("input"); inS != "" {
		input, err = strconv.Atoi(inS)
		if err != nil || input < 0 || input > t.N() {
			writeAPIError(w, http.StatusBadRequest, "invalid_argument",
				"input must lie in [0,%d]", t.N())
			return
		}
	}
	if cntS := q.Get("count"); cntS != "" {
		count, err = strconv.Atoi(cntS)
		if err != nil || count < 1 || count > maxSampleCount {
			writeAPIError(w, http.StatusBadRequest, "invalid_argument",
				"count must lie in [1,%d]", maxSampleCount)
			return
		}
	}
	rt, err := s.runtimes.get(t.ID(), func() (*tenantRuntime, error) { return s.buildRuntime(t) })
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"tenant": t.ID(),
		"level":  lvl,
		"alpha":  rt.alphaStrs[lvl-1],
		"input":  input,
		"count":  count,
		"draws":  rt.samplers[lvl-1].SampleN(input, count),
	})
}

// handleTenantAccounting reports the tenant's exact privacy spend.
func (s *server) handleTenantAccounting(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookupTenant(w, r)
	if !ok {
		return
	}
	out := accountingBody(t)
	out["tenant"] = t.ID()
	writeJSON(w, http.StatusOK, out)
}

// handleTenantTailored runs the §2.5 tailored solve for the tenant's
// OWN configured consumer (loss, side) at one of its levels — the
// per-tenant answer to "what is the best mechanism for me?", which by
// Theorem 1 the tenant can also reach by post-processing its level's
// geometric release.
func (s *server) handleTenantTailored(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookupTenant(w, r)
	if !ok {
		return
	}
	if t.N() > s.maxTailoredN {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument",
			"tenant n %d exceeds the LP cap %d", t.N(), s.maxTailoredN)
		return
	}
	lvl, err := tenantLevel(r, t)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, "invalid_argument", "%v", err)
		return
	}
	lossName, width := t.Loss()
	lf, err := lossFromConfig(lossName, width)
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	alpha, err := t.Alpha(lvl)
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	ctx, cancel := s.solveContext(r)
	defer cancel()
	c := &consumer.Consumer{Loss: lf, Side: t.Side()}
	tl, err := s.eng.TailoredCtx(ctx, c, t.N(), alpha)
	if err != nil {
		writeSolveError(w, err)
		return
	}
	resp := map[string]interface{}{
		"tenant":       t.ID(),
		"n":            t.N(),
		"level":        lvl,
		"alpha":        alpha.RatString(),
		"loss":         lf.Name(),
		"minimax_loss": tl.Loss.RatString(),
	}
	if r.URL.Query().Get("mech") == "1" {
		resp["mechanism"] = tl.Mechanism
	}
	writeJSON(w, http.StatusOK, resp)
}
