// Benchmarks regenerating the cost profile of every paper artifact
// (one benchmark per table/figure, DESIGN.md §3) plus the ablation
// benchmarks of DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
package minimaxdp

import (
	"context"
	"encoding/json"
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"minimaxdp/internal/consumer"
	"minimaxdp/internal/database"
	"minimaxdp/internal/derive"
	"minimaxdp/internal/laplace"
	"minimaxdp/internal/loss"
	"minimaxdp/internal/lp"
	"minimaxdp/internal/mechanism"
	"minimaxdp/internal/rational"
	"minimaxdp/internal/release"
	"minimaxdp/internal/sample"
)

// --- F1: Figure 1 (two-sided geometric sampling) --------------------------

func BenchmarkFigure1Sampling(b *testing.B) {
	rng := sample.NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sample.TwoSidedGeometric(0.2, rng)
	}
}

// --- T1: Table 1 (the two LPs and the mechanism) ---------------------------

func BenchmarkTable1Geometric(b *testing.B) {
	alpha := MustRat("1/4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mechanism.Geometric(3, alpha); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1OptimalLP(b *testing.B) {
	alpha := MustRat("1/4")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consumer.OptimalMechanism(c, 3, alpha); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Interaction(b *testing.B) {
	alpha := MustRat("1/4")
	g, err := mechanism.Geometric(3, alpha)
	if err != nil {
		b.Fatal(err)
	}
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := consumer.OptimalInteraction(c, g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T2: Table 2 (constructing G and G′ across sizes) ----------------------

func BenchmarkTable2Construct(b *testing.B) {
	alpha := MustRat("1/2")
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mechanism.Geometric(n, alpha); err != nil {
					b.Fatal(err)
				}
				if _, err := mechanism.GeometricPrime(n, alpha); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- EB: Appendix B (derivability of the counterexample) -------------------

func BenchmarkAppendixB(b *testing.B) {
	m := derive.AppendixB()
	alpha := MustRat("1/2")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if derive.Derivable(m, alpha) {
			b.Fatal("counterexample reported derivable")
		}
	}
}

// --- ETh2: Theorem 2 condition check vs full factorization -----------------

func BenchmarkTheorem2Check(b *testing.B) {
	alpha := MustRat("1/2")
	g, err := mechanism.Geometric(8, alpha)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("condition", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !derive.Derivable(g, alpha) {
				b.Fatal("G not derivable from itself")
			}
		}
	})
	b.Run("factorization", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := derive.Factor(g, alpha); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EL1: Lemma 1 (determinants) -------------------------------------------

func BenchmarkDeterminant(b *testing.B) {
	alpha := MustRat("1/2")
	for _, n := range []int{4, 8, 16} {
		g, err := mechanism.Geometric(n, alpha)
		if err != nil {
			b.Fatal(err)
		}
		m := g.Matrix()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Det(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation (DESIGN.md §5): Gaussian-elimination determinant vs cofactor
// expansion.
func BenchmarkDetBareissVsCofactor(b *testing.B) {
	alpha := MustRat("1/2")
	g, err := mechanism.Geometric(6, alpha)
	if err != nil {
		b.Fatal(err)
	}
	m := g.Matrix()
	b.Run("elimination", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Det(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cofactor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.DetCofactor(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EL3: Lemma 3 (transition construction) --------------------------------

func BenchmarkTransition(b *testing.B) {
	a := MustRat("1/4")
	bb := MustRat("1/2")
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := derive.Transition(n, a, bb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation (DESIGN.md §5): the closed-form tridiagonal inverse vs
// Gauss–Jordan for G⁻¹.
func BenchmarkGeometricInverseClosedVsGauss(b *testing.B) {
	alpha := MustRat("1/2")
	const n = 32
	g, err := mechanism.Geometric(n, alpha)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("closed-form", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mechanism.GeometricInverse(n, alpha); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gauss-jordan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.Matrix().Inverse(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- ETh1: Theorem 1 universal optimality ----------------------------------

func BenchmarkUniversalOptimality(b *testing.B) {
	alpha := MustRat("1/2")
	g, err := mechanism.Geometric(4, alpha)
	if err != nil {
		b.Fatal(err)
	}
	c := &consumer.Consumer{Loss: loss.Squared{}, Side: consumer.Interval(1, 4)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tailored, err := consumer.OptimalMechanism(c, 4, alpha)
		if err != nil {
			b.Fatal(err)
		}
		inter, err := consumer.OptimalInteraction(c, g)
		if err != nil {
			b.Fatal(err)
		}
		if tailored.Loss.Cmp(inter.Loss) != 0 {
			b.Fatal("universal optimality violated")
		}
	}
}

// --- ECol: collusion-resistant release -------------------------------------

func BenchmarkCollusionRelease(b *testing.B) {
	alphas := []*big.Rat{MustRat("1/2"), MustRat("11/20"), MustRat("3/5")}
	plan, err := release.NewPlan(30, alphas)
	if err != nil {
		b.Fatal(err)
	}
	rng := sample.NewRand(1)
	b.Run("cascade", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.Release(15, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := plan.NaiveRelease(15, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EBay: Bayesian consumer path ------------------------------------------

func BenchmarkBayesian(b *testing.B) {
	alpha := MustRat("1/2")
	g, err := mechanism.Geometric(5, alpha)
	if err != nil {
		b.Fatal(err)
	}
	bay := &consumer.Bayesian{Loss: loss.Absolute{}, Prior: consumer.UniformPrior(5)}
	b.Run("interaction", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := consumer.OptimalBayesianInteraction(bay, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tailored-LP", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := consumer.OptimalBayesianMechanism(bay, 5, alpha); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EObl: Appendix A reduction --------------------------------------------

func BenchmarkObliviousReduction(b *testing.B) {
	mk := func(a1, b1 bool) *database.Database {
		return database.New([]database.Row{
			{Name: "r0", Age: 30, City: "X", HasFlu: a1},
			{Name: "r1", Age: 30, City: "X", HasFlu: b1},
		})
	}
	q := database.CountQuery{Name: "ones", Pred: func(r database.Row) bool { return r.HasFlu }}
	uni := []*database.Database{mk(false, false), mk(false, true), mk(true, false), mk(true, true)}
	m := &database.NonOblivious{Universe: uni, Query: q, Probs: [][]float64{
		{0.9, 0.1, 0}, {0.2, 0.8, 0}, {0, 0.6, 0.4}, {0, 0.1, 0.9},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.ObliviousReduction(2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: exact rational simplex vs float64 simplex -------------------

func BenchmarkSimplexRationalVsFloat(b *testing.B) {
	build := func() *lp.Problem {
		// The Table 1 tailored-mechanism LP at n=4: a representative
		// mid-size exact LP.
		p := lp.NewProblem(lp.Minimize)
		n := 4
		d := p.NewVariable("d")
		xv := make([][]lp.Var, n+1)
		lf := loss.Absolute{}
		for i := 0; i <= n; i++ {
			xv[i] = make([]lp.Var, n+1)
			for r := 0; r <= n; r++ {
				xv[i][r] = p.NewVariable("x")
			}
		}
		p.SetObjective(lp.TInt(d, 1))
		for i := 0; i <= n; i++ {
			terms := []lp.Term{lp.TInt(d, 1)}
			for r := 0; r <= n; r++ {
				if lf.Loss(i, r).Sign() != 0 {
					terms = append(terms, lp.T(xv[i][r], rational.Neg(lf.Loss(i, r))))
				}
			}
			p.AddConstraint(terms, lp.GE, rational.Zero())
		}
		alpha := rational.New(1, 2)
		negAlpha := rational.Neg(alpha)
		for i := 0; i < n; i++ {
			for r := 0; r <= n; r++ {
				p.AddConstraint([]lp.Term{lp.TInt(xv[i][r], 1), lp.T(xv[i+1][r], negAlpha)}, lp.GE, rational.Zero())
				p.AddConstraint([]lp.Term{lp.TInt(xv[i+1][r], 1), lp.T(xv[i][r], negAlpha)}, lp.GE, rational.Zero())
			}
		}
		for i := 0; i <= n; i++ {
			terms := make([]lp.Term, 0, n+1)
			for r := 0; r <= n; r++ {
				terms = append(terms, lp.TInt(xv[i][r], 1))
			}
			p.AddConstraint(terms, lp.EQ, rational.One())
		}
		return p
	}
	b.Run("rational", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := build()
			sol, err := p.Solve()
			if err != nil || sol.Status != lp.Optimal {
				b.Fatalf("%v %v", sol, err)
			}
		}
	})
	b.Run("float64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p := build()
			sol, err := p.SolveFloat()
			if err != nil || sol.Status != lp.Optimal {
				b.Fatalf("%v %v", sol, err)
			}
		}
	})
}

// --- Ablation: float-guided warm start vs cold exact solve -----------------

// buildTailoredLP constructs the §2.5 tailored-mechanism LP for the
// absolute-loss consumer at size n: the BenchmarkTable1OptimalLP
// workload when n=3, α=1/4.
func buildTailoredLP(n int, alpha *big.Rat) *lp.Problem {
	lf := loss.Absolute{}
	p := lp.NewProblem(lp.Minimize)
	d := p.NewVariable("d")
	xv := make([][]lp.Var, n+1)
	for i := 0; i <= n; i++ {
		xv[i] = make([]lp.Var, n+1)
		for r := 0; r <= n; r++ {
			xv[i][r] = p.NewVariable("x")
		}
	}
	p.SetObjective(lp.TInt(d, 1))
	for i := 0; i <= n; i++ {
		terms := []lp.Term{lp.TInt(d, 1)}
		for r := 0; r <= n; r++ {
			if lf.Loss(i, r).Sign() != 0 {
				terms = append(terms, lp.T(xv[i][r], rational.Neg(lf.Loss(i, r))))
			}
		}
		p.AddConstraint(terms, lp.GE, rational.Zero())
	}
	negAlpha := rational.Neg(alpha)
	for i := 0; i < n; i++ {
		for r := 0; r <= n; r++ {
			p.AddConstraint([]lp.Term{lp.TInt(xv[i][r], 1), lp.T(xv[i+1][r], negAlpha)}, lp.GE, rational.Zero())
			p.AddConstraint([]lp.Term{lp.TInt(xv[i+1][r], 1), lp.T(xv[i][r], negAlpha)}, lp.GE, rational.Zero())
		}
	}
	for i := 0; i <= n; i++ {
		terms := make([]lp.Term, 0, n+1)
		for r := 0; r <= n; r++ {
			terms = append(terms, lp.TInt(xv[i][r], 1))
		}
		p.AddConstraint(terms, lp.EQ, rational.One())
	}
	return p
}

// BenchmarkSimplexWarmStart is the tentpole ablation: the cold
// two-phase exact solve versus the float-guided warm start on the
// Table 1 tailored LP. The warmstart sub-benchmark asserts the
// crossover certificate actually hit (no exact pivots, no fallback),
// so the numbers compare the paths the names claim.
func BenchmarkSimplexWarmStart(b *testing.B) {
	alpha := MustRat("1/4")
	run := func(strategy lp.Strategy) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := buildTailoredLP(3, alpha)
				var stats lp.SolveStats
				sol, err := p.SolveWithOpts(context.Background(),
					lp.SolveOpts{Strategy: strategy, Stats: &stats})
				if err != nil || sol.Status != lp.Optimal {
					b.Fatalf("%v %v", sol, err)
				}
				if strategy == lp.StrategyWarmStart && !stats.WarmStartHit {
					b.Fatalf("warm start did not hit: %+v", stats)
				}
			}
		}
	}
	b.Run("exact", run(lp.StrategyExact))
	b.Run("warmstart", run(lp.StrategyWarmStart))
}

// BenchmarkSimplexPresolve measures the exact presolve: the Table 1
// tailored LP padded with presolve-removable structure (fixed
// variables via equality singletons, plus rows that reference them),
// solved with the reductions on vs off. The presolve sub-benchmark
// asserts rows and columns were actually eliminated, so the two
// numbers really compare reduced vs unreduced solves of the same
// problem; byte-identity of the two answers is the fuzz oracle's job
// (FuzzPresolveMatchesDense).
func BenchmarkSimplexPresolve(b *testing.B) {
	alpha := MustRat("1/4")
	build := func() *lp.Problem {
		p := buildTailoredLP(3, alpha)
		aux := make([]lp.Var, 48)
		for j := range aux {
			aux[j] = p.NewVariable("aux")
			p.AddConstraint([]lp.Term{lp.TInt(aux[j], 1)}, lp.EQ, rational.New(int64(j), int64(j+1)))
		}
		// Rows over fixed variables collapse once the fixings
		// substitute through.
		for j := 0; j+2 < len(aux); j += 3 {
			p.AddConstraint([]lp.Term{
				lp.TInt(aux[j], 1), lp.TInt(aux[j+1], 2), lp.TInt(aux[j+2], 3),
			}, lp.LE, rational.New(1000, 1))
		}
		return p
	}
	run := func(noPresolve bool) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := build()
				var stats lp.SolveStats
				sol, err := p.SolveWithOpts(context.Background(),
					lp.SolveOpts{NoPresolve: noPresolve, Stats: &stats})
				if err != nil || sol.Status != lp.Optimal {
					b.Fatalf("%v %v", sol, err)
				}
				if !noPresolve && (stats.PresolveRows == 0 || stats.PresolveCols == 0) {
					b.Fatalf("presolve eliminated nothing: %+v", stats)
				}
			}
		}
	}
	b.Run("presolve", run(false))
	b.Run("nopresolve", run(true))
}

// --- Ablation: sampler strategies ------------------------------------------

func BenchmarkSamplerStrategies(b *testing.B) {
	alpha := MustRat("1/2")
	g, err := mechanism.Geometric(20, alpha)
	if err != nil {
		b.Fatal(err)
	}
	weights := make([]float64, 21)
	for r := 0; r <= 20; r++ {
		weights[r] = rational.Float(g.Prob(10, r))
	}
	rng := rand.New(rand.NewSource(1))
	b.Run("closed-form-geometric", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sample.GeometricMechanismSample(10, 20, 0.5, rng)
		}
	})
	b.Run("inverse-cdf", func(b *testing.B) {
		s, err := sample.NewInverseCDF(weights)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Sample(rng)
		}
	})
	b.Run("alias", func(b *testing.B) {
		s, err := sample.NewAlias(weights)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Sample(rng)
		}
	})
	b.Run("mechanism-row-walk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = g.Sample(10, rng)
		}
	})
}

// --- Ablation: interaction LP vs direct factorization ----------------------

// When the target mechanism is known to be derivable (here: G_β from
// G_α), the LP and the linear-algebra factorization produce
// transitions of equal quality; the factorization is much cheaper.
func BenchmarkInteractionLPvsFactor(b *testing.B) {
	alphaLo := MustRat("1/4")
	alphaHi := MustRat("1/2")
	const n = 6
	gHi, err := mechanism.Geometric(n, alphaHi)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("factor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := derive.Factor(gHi, alphaLo); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interaction-lp", func(b *testing.B) {
		c := &consumer.Consumer{Loss: loss.Absolute{}}
		gLo, err := mechanism.Geometric(n, alphaLo)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := consumer.OptimalInteraction(c, gLo); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EL5: Lemma 5 refinement and structure check ----------------------------

func BenchmarkLemma5(b *testing.B) {
	alpha := MustRat("1/2")
	c := &consumer.Consumer{Loss: loss.Absolute{}}
	b.Run("refined-optimum", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := consumer.OptimalMechanismRefined(c, 3, alpha); err != nil {
				b.Fatal(err)
			}
		}
	})
	g, err := mechanism.Geometric(8, alpha)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("structure-check", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := consumer.CheckLemma5(g, alpha); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- ELap: Laplace baseline --------------------------------------------------

func BenchmarkLaplace(b *testing.B) {
	rng := sample.NewRand(1)
	b.Run("sample", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := laplace.MechanismSample(10, 20, 0.5, rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rounded-pmf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := laplace.RoundedPMF(10, 20, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- LP duality certificate ----------------------------------------------

func BenchmarkStrongDualityCertificate(b *testing.B) {
	// Dualize and solve the Table 1 LP (the certificate pipeline).
	build := func() *lp.Problem {
		n := 3
		alpha := rational.New(1, 4)
		p := lp.NewProblem(lp.Minimize)
		d := p.NewVariable("d")
		xv := make([][]lp.Var, n+1)
		for i := 0; i <= n; i++ {
			xv[i] = make([]lp.Var, n+1)
			for rr := 0; rr <= n; rr++ {
				xv[i][rr] = p.NewVariable("x")
			}
		}
		p.SetObjective(lp.TInt(d, 1))
		for i := 0; i <= n; i++ {
			terms := []lp.Term{lp.TInt(d, 1)}
			for rr := 0; rr <= n; rr++ {
				dd := int64(i - rr)
				if dd < 0 {
					dd = -dd
				}
				if dd != 0 {
					terms = append(terms, lp.T(xv[i][rr], rational.Int(-dd)))
				}
			}
			p.AddConstraint(terms, lp.GE, rational.Zero())
		}
		negAlpha := rational.Neg(alpha)
		for i := 0; i < n; i++ {
			for rr := 0; rr <= n; rr++ {
				p.AddConstraint([]lp.Term{lp.TInt(xv[i][rr], 1), lp.T(xv[i+1][rr], negAlpha)}, lp.GE, rational.Zero())
				p.AddConstraint([]lp.Term{lp.TInt(xv[i+1][rr], 1), lp.T(xv[i][rr], negAlpha)}, lp.GE, rational.Zero())
			}
		}
		for i := 0; i <= n; i++ {
			terms := make([]lp.Term, 0, n+1)
			for rr := 0; rr <= n; rr++ {
				terms = append(terms, lp.TInt(xv[i][rr], 1))
			}
			p.AddConstraint(terms, lp.EQ, rational.One())
		}
		return p
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := build()
		primal, err := p.Solve()
		if err != nil {
			b.Fatal(err)
		}
		d, err := p.Dual()
		if err != nil {
			b.Fatal(err)
		}
		dual, err := d.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if primal.Objective.Cmp(dual.Objective) != 0 {
			b.Fatal("strong duality failed")
		}
	}
}

// --- Mechanism serialization -------------------------------------------------

func BenchmarkMechanismJSON(b *testing.B) {
	g, err := mechanism.Geometric(32, MustRat("1/2"))
	if err != nil {
		b.Fatal(err)
	}
	data, err := json.Marshal(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var m mechanism.Mechanism
			if err := json.Unmarshal(data, &m); err != nil {
				b.Fatal(err)
			}
		}
	})
}
